open Aprof_vm.Program
module Sync = Aprof_vm.Sync
module Rng = Aprof_util.Rng
module Device = Aprof_vm.Device

let params_device ~seed n =
  let rng = Rng.create seed in
  Device.file (Array.init n (fun _ -> 1 + Rng.int rng 9))

let load_params n =
  call "load_params"
    (let* fd = sys_open "params" in
     let* buf = alloc n in
     let* _ = sys_read fd buf n in
     let* s = Blocks.read_sum buf n in
     return (1 + (s mod 7)))

(* ------------------------------------------------------------------ *)
(* bt331: block-structured solver.  The grid is a row of square blocks;
   each phase a thread factorizes its blocks reading the boundary column
   of the previous block — owned by another thread at band edges. *)

let bt331 ~workers ~blocks ~block ~steps ~seed:_ =
  let workers = max 1 workers in
  let cells = blocks * block in
  let main =
    call "bt_main"
      (let* _s = load_params 4 in
       let* grid = alloc cells in
       let* () = Blocks.write_fill grid cells (fun i -> (i * 19) land 0xff) in
       let* bar = Blocks.Spin_barrier.create ~parties:workers in
       let* bounds = alloc blocks in
       let* () = Blocks.write_fill bounds blocks (fun _ -> 1) in
       Blocks.run_workers workers (fun w ->
           call "bt_worker"
             (let blo, bhi = Blocks.band w ~of_:workers ~total:blocks in
              for_ 1 steps (fun _ ->
                  (* phase 1: snapshot each block's left boundary (reads
                     only), so phase 2's writes cannot race with them *)
                  let* () =
                    call "exchange_boundaries"
                      (for_ blo (bhi - 1) (fun b ->
                           let* bound =
                             if b > 0 then read (grid + (b * block) - 1)
                             else return 1
                           in
                           write (bounds + b) bound))
                  in
                  let* () = Blocks.Spin_barrier.wait bar in
                  let* () =
                    call "factor_blocks"
                      (for_ blo (bhi - 1) (fun b ->
                           let base = b * block in
                           let* bound = read (bounds + b) in
                           for_ 0 (block - 1) (fun i ->
                               let* v = read (grid + base + i) in
                               let* () = compute 2 in
                               write (grid + base + i)
                                 ((v + bound + i) land 0xffff))))
                  in
                  Blocks.Spin_barrier.wait bar))))
  in
  { Workload.programs = [ main ]; devices = [ ("params", params_device ~seed:11 4) ] }

(* ------------------------------------------------------------------ *)
(* botsspar: sparse LU as a task DAG.  For each panel k: one diagonal
   task, then a wave of update tasks U(k, j) for j > k, each reading the
   diagonal panel produced by whichever thread ran the diagonal task. *)

let botsspar ~workers ~panels ~seed:_ =
  let workers = max 1 workers in
  let panel_cells = 8 in
  let main =
    call "spar_main"
      (let* _s = load_params 4 in
       let total = panels * panel_cells in
       let* m = alloc total in
       let* () = Blocks.write_fill m total (fun i -> 1 + (i land 7)) in
       let* tasks = Sync.Channel.create (2 * workers) in
       let* done_ch = Sync.Channel.create (2 * workers) in
       let* tids =
         Blocks.spawn_all
           (List.init workers (fun _ ->
                call "spar_worker"
                  (let rec serve () =
                     let* t = Sync.Channel.recv tasks in
                     if t < 0 then return ()
                     else begin
                       let k = t / panels and j = t mod panels in
                       let* () =
                         if k = j then
                           call "factor_diagonal"
                             (for_ 0 (panel_cells - 1) (fun i ->
                                  let* v = read (m + (k * panel_cells) + i) in
                                  let* () = compute 3 in
                                  write (m + (k * panel_cells) + i)
                                    ((v * 3) land 0xff)))
                         else
                           call "update_panel"
                             (for_ 0 (panel_cells - 1) (fun i ->
                                  let* d = read (m + (k * panel_cells) + i) in
                                  let* v = read (m + (j * panel_cells) + i) in
                                  let* () = compute 2 in
                                  write (m + (j * panel_cells) + i)
                                    ((v + d) land 0xff)))
                       in
                       let* () = Sync.Channel.send done_ch t in
                       serve ()
                     end
                   in
                   serve ())))
       in
       (* schedule the DAG wave by wave, keeping the number of
          outstanding tasks bounded so neither channel can fill up while
          the scheduler itself is blocked *)
       let* () =
         for_ 0 (panels - 1) (fun k ->
             let* () = Sync.Channel.send tasks ((k * panels) + k) in
             let* _ = Sync.Channel.recv done_ch in
             let* outstanding =
               fold_range (k + 1) (panels - 1) 0 (fun j outstanding ->
                   let* () = Sync.Channel.send tasks ((k * panels) + j) in
                   if outstanding + 1 >= workers then
                     let* _ = Sync.Channel.recv done_ch in
                     return outstanding
                   else return (outstanding + 1))
             in
             for_ 1 outstanding (fun _ ->
                 let* _ = Sync.Channel.recv done_ch in
                 return ()))
       in
       let* () = for_ 1 workers (fun _ -> Sync.Channel.send tasks (-1)) in
       Blocks.join_all tids)
  in
  { Workload.programs = [ main ]; devices = [ ("params", params_device ~seed:12 4) ] }

(* ------------------------------------------------------------------ *)
(* ilbdc: lattice Boltzmann.  Three distribution populations per cell;
   streaming pulls from the left/self/right neighbour of the previous
   generation (double buffered), collision relaxes locally. *)

let ilbdc ~workers ~cells ~steps ~seed:_ =
  let workers = max 1 workers in
  let main =
    call "ilbdc_main"
      (let* _s = load_params 4 in
       let field g d = (g * 3 * cells) + (d * cells) in
       let* base = alloc (2 * 3 * cells) in
       let* () =
         Blocks.write_fill base (2 * 3 * cells) (fun i -> (i * 7) land 0x3f)
       in
       let* bar = Blocks.Spin_barrier.create ~parties:workers in
       Blocks.run_workers workers (fun w ->
           call "ilbdc_worker"
             (let lo, hi = Blocks.band w ~of_:workers ~total:cells in
              for_ 1 steps (fun s ->
                  let src = s land 1 and dst = 1 - (s land 1) in
                  let* () =
                    call "stream_collide"
                      (for_ lo (hi - 1) (fun i ->
                           let left = if i = 0 then cells - 1 else i - 1 in
                           let right = (i + 1) mod cells in
                           let* f0 = read (base + field src 0 + i) in
                           let* f1 = read (base + field src 1 + left) in
                           let* f2 = read (base + field src 2 + right) in
                           let* () = compute 3 in
                           let rho = f0 + f1 + f2 in
                           let* () =
                             write (base + field dst 0 + i) ((rho * 2 / 3) land 0x3f)
                           in
                           let* () =
                             write (base + field dst 1 + i) ((rho / 6) land 0x3f)
                           in
                           write (base + field dst 2 + i) ((rho / 6) land 0x3f)))
                  in
                  Blocks.Spin_barrier.wait bar))))
  in
  { Workload.programs = [ main ]; devices = [ ("params", params_device ~seed:13 4) ] }

(* ------------------------------------------------------------------ *)
(* applu: SSOR with pipelined wavefronts.  Thread w owns a band of rows;
   for each column strip it must wait for thread w-1 to finish the same
   strip (point-to-point semaphore handoff — no global barrier). *)

let applu ~workers ~rows ~cols ~sweeps ~seed:_ =
  let workers = max 1 workers in
  let strip = 4 in
  let n_strips = (cols + strip - 1) / strip in
  let main =
    call "applu_main"
      (let* _s = load_params 4 in
       let* grid = alloc (rows * cols) in
       let* () =
         Blocks.write_fill grid (rows * cols) (fun i -> (i * 23) land 0xff)
       in
       (* handoff.(w) signals thread w that its upstream neighbour
          finished a strip *)
       let rec mk_sems k acc =
         if k = 0 then return (Array.of_list (List.rev acc))
         else
           let* s = sem_create 0 in
           mk_sems (k - 1) (s :: acc)
       in
       let* handoff = mk_sems workers [] in
       let* finish = mk_sems 1 [] in
       let finish = finish.(0) in
       let* bar = Blocks.Spin_barrier.create ~parties:workers in
       let* () =
         Blocks.run_workers workers (fun w ->
             call "applu_worker"
               (let rlo, rhi = Blocks.band w ~of_:workers ~total:rows in
                let* () =
                  for_ 1 sweeps (fun _ ->
                      let* () =
                        for_ 0 (n_strips - 1) (fun sidx ->
                          let clo = sidx * strip in
                          let chi = min cols (clo + strip) in
                          (* wait for the upstream band to finish this strip *)
                          let* () =
                            when_ (w > 0) (sem_wait handoff.(w))
                          in
                          let* () =
                            call "ssor_strip"
                              (for_ rlo (rhi - 1) (fun r ->
                                   for_ clo (chi - 1) (fun c ->
                                       let at rr cc = grid + (rr * cols) + cc in
                                       let* v = read (at r c) in
                                       let* up =
                                         if r > 0 then read (at (r - 1) c)
                                         else return v
                                       in
                                       let* lf =
                                         if c > 0 then read (at r (c - 1))
                                         else return v
                                       in
                                       let* () = compute 2 in
                                       write (at r c) ((v + up + lf) / 3))))
                          in
                          (* pass the strip downstream *)
                          if w + 1 < workers then sem_post handoff.(w + 1)
                          else sem_post finish)
                      in
                      (* a sweep may not lap the pipeline: everyone syncs
                         before the next forward pass *)
                      Blocks.Spin_barrier.wait bar)
                in
                return ()))
       in
       (* drain the completion tokens of the last band *)
       for_ 1 (sweeps * n_strips) (fun _ -> sem_wait finish))
  in
  { Workload.programs = [ main ]; devices = [ ("params", params_device ~seed:14 4) ] }

(* ------------------------------------------------------------------ *)
(* bwaves: two coupled fields (pressure, velocity) under a 5-point-like
   1-D stencil, double buffered per field. *)

let bwaves ~workers ~cells ~steps ~seed:_ =
  let workers = max 1 workers in
  let main =
    call "bwaves_main"
      (let* _s = load_params 4 in
       let* p0 = alloc cells in
       let* p1 = alloc cells in
       let* v0 = alloc cells in
       let* v1 = alloc cells in
       let* () = Blocks.write_fill p0 cells (fun i -> 100 + (i land 15)) in
       let* () = Blocks.write_fill v0 cells (fun _ -> 0) in
       let* () = Blocks.write_fill p1 cells (fun _ -> 0) in
       let* () = Blocks.write_fill v1 cells (fun _ -> 0) in
       let* bar = Blocks.Spin_barrier.create ~parties:workers in
       Blocks.run_workers workers (fun w ->
           call "bwaves_worker"
             (let lo, hi = Blocks.band w ~of_:workers ~total:cells in
              for_ 1 steps (fun s ->
                  let psrc, pdst = if s land 1 = 1 then (p0, p1) else (p1, p0) in
                  let vsrc, vdst = if s land 1 = 1 then (v0, v1) else (v1, v0) in
                  let* () =
                    call "flux_update"
                      (for_ lo (hi - 1) (fun i ->
                           let left = if i = 0 then cells - 1 else i - 1 in
                           let right = (i + 1) mod cells in
                           let* pc = read (psrc + i) in
                           let* pl = read (psrc + left) in
                           let* pr = read (psrc + right) in
                           let* vc = read (vsrc + i) in
                           let* () = compute 4 in
                           let* () =
                             write (pdst + i) ((pc + pl + pr + vc) / 3 land 0xffff)
                           in
                           write (vdst + i) ((vc + pr - pl) land 0xffff)))
                  in
                  Blocks.Spin_barrier.wait bar))))
  in
  { Workload.programs = [ main ]; devices = [ ("params", params_device ~seed:15 4) ] }

(* ------------------------------------------------------------------ *)
(* fma3d: finite elements.  Each element gathers its nodes' positions
   (shared, scattered by other threads' elements) and scatter-adds forces
   back under striped locks. *)

let fma3d ~workers ~elements ~nodes ~steps ~seed:_ =
  let workers = max 1 workers in
  let n_locks = 8 in
  let main =
    call "fma3d_main"
      (let* _s = load_params 4 in
       let* pos = alloc nodes in
       let* force = alloc nodes in
       let* () = Blocks.write_fill pos nodes (fun i -> i * 3) in
       let* () = Blocks.write_fill force nodes (fun _ -> 0) in
       let rec mk_locks k acc =
         if k = 0 then return (Array.of_list (List.rev acc))
         else
           let* m = Sync.Mutex.create () in
           mk_locks (k - 1) (m :: acc)
       in
       let* locks = mk_locks n_locks [] in
       let* bar = Blocks.Spin_barrier.create ~parties:workers in
       Blocks.run_workers workers (fun w ->
           call "fma3d_worker"
             (let elo, ehi = Blocks.band w ~of_:workers ~total:elements in
              for_ 1 steps (fun _ ->
                  let* () =
                    call "element_forces"
                      (for_ elo (ehi - 1) (fun e ->
                           (* the element's three nodes, spread across the
                              mesh so they are shared between bands *)
                           let n1 = e mod nodes in
                           let n2 = (e * 7 + 3) mod nodes in
                           let n3 = (e * 13 + 5) mod nodes in
                           let* x1 = read (pos + n1) in
                           let* x2 = read (pos + n2) in
                           let* x3 = read (pos + n3) in
                           let* () = compute 4 in
                           let f = (x1 + x2 + x3) / 3 in
                           iter_list
                             (fun n ->
                               Sync.Mutex.with_lock locks.(n mod n_locks)
                                 (let* cur = read (force + n) in
                                  write (force + n) ((cur + f) land 0xffff)))
                             [ n1; n2; n3 ]))
                  in
                  let* () = Blocks.Spin_barrier.wait bar in
                  let* () =
                    call "advance_nodes"
                      (let nlo, nhi = Blocks.band w ~of_:workers ~total:nodes in
                       for_ nlo (nhi - 1) (fun n ->
                           let* x = read (pos + n) in
                           let* f = read (force + n) in
                           let* () = compute 1 in
                           let* () = write (pos + n) ((x + (f mod 9)) land 0xffff) in
                           write (force + n) 0))
                  in
                  Blocks.Spin_barrier.wait bar))))
  in
  { Workload.programs = [ main ]; devices = [ ("params", params_device ~seed:16 4) ] }

(* ------------------------------------------------------------------ *)

let specs =
  [
    {
      Workload.name = "bt331";
      suite = Workload.Omp;
      description = "block solver with boundary exchange";
      make =
        (fun ~threads ~scale ~seed ->
          bt331 ~workers:threads ~blocks:(max 4 (scale / 32)) ~block:8 ~steps:5
            ~seed);
    };
    {
      Workload.name = "botsspar";
      suite = Workload.Omp;
      description = "sparse LU task DAG over panels";
      make =
        (fun ~threads ~scale ~seed ->
          botsspar ~workers:threads ~panels:(max 4 (scale / 25)) ~seed);
    };
    {
      Workload.name = "ilbdc";
      suite = Workload.Omp;
      description = "lattice-Boltzmann pull-scheme streaming";
      make =
        (fun ~threads ~scale ~seed ->
          ilbdc ~workers:threads ~cells:(max 16 (scale / 2)) ~steps:5 ~seed);
    };
    {
      Workload.name = "applu";
      suite = Workload.Omp;
      description = "SSOR with pipelined wavefront handoff";
      make =
        (fun ~threads ~scale ~seed ->
          applu ~workers:threads ~rows:(max 8 (scale / 16)) ~cols:16 ~sweeps:3
            ~seed);
    };
    {
      Workload.name = "bwaves";
      suite = Workload.Omp;
      description = "coupled-field wave stencil";
      make =
        (fun ~threads ~scale ~seed ->
          bwaves ~workers:threads ~cells:(max 16 (scale / 2)) ~steps:5 ~seed);
    };
    {
      Workload.name = "fma3d";
      suite = Workload.Omp;
      description = "finite elements with scatter-add under striped locks";
      make =
        (fun ~threads ~scale ~seed ->
          fma3d ~workers:threads ~elements:(max 8 (scale / 4))
            ~nodes:(max 8 (scale / 8)) ~steps:4 ~seed);
    };
  ]
