type t = {
  programs : unit Aprof_vm.Program.t list;
  devices : (string * Aprof_vm.Device.t) list;
}

type suite = Parsec | Omp | App | Micro

type spec = {
  name : string;
  suite : suite;
  description : string;
  make : threads:int -> scale:int -> seed:int -> t;
}

let suite_name = function
  | Parsec -> "parsec"
  | Omp -> "omp2012"
  | App -> "app"
  | Micro -> "micro"

let run ?(scheduler = Aprof_vm.Scheduler.Round_robin { slice = 64 })
    ?(max_events = 50_000_000) w ~seed =
  let config =
    {
      Aprof_vm.Interp.scheduler;
      seed;
      devices = w.devices;
      max_events;
      reuse_freed_memory = false;
    }
  in
  Aprof_vm.Interp.run config w.programs

let run_spec ?scheduler ?max_events spec ~threads ~scale ~seed =
  run ?scheduler ?max_events (spec.make ~threads ~scale ~seed) ~seed
