(** Shared building blocks for the benchmark miniatures. *)

open Aprof_vm

(** [read_sum a n] loads cells [a .. a+n-1] and returns their sum. *)
val read_sum : Program.addr -> int -> int Program.t

(** [write_fill a n f] stores [f i] into cell [a+i] for [i < n]. *)
val write_fill : Program.addr -> int -> (int -> int) -> unit Program.t

(** [copy ~src ~dst n] loads each of [n] cells from [src] and stores it
    at [dst]. *)
val copy : src:Program.addr -> dst:Program.addr -> int -> unit Program.t

(** [spawn_all bodies] spawns one thread per body and returns the tids. *)
val spawn_all : unit Program.t list -> int list Program.t

(** [join_all tids] joins every thread. *)
val join_all : int list -> unit Program.t

(** [run_workers n body] spawns [n] threads running [body i] for worker
    index [i] and joins them all. *)
val run_workers : int -> (int -> unit Program.t) -> unit Program.t

(** [band i ~of_:t ~total:n] is the half-open [(lo, hi)] row range of
    worker [i] when [n] items are split across [t] workers as evenly as
    possible. *)
val band : int -> of_:int -> total:int -> int * int

(** A spinning barrier, as OpenMP runtimes implement it: arrivals bump a
    shared counter which every thread then polls a few times (interleaved
    with yields) before blocking.  The polls re-read a cell other threads
    keep rewriting, so each wait contributes a scheduling-dependent number
    of induced first-reads — the mechanism behind the drms variability
    (and hence profile richness) the paper observes on barrier-parallel
    codes.  Appears in profiles as routine [omp_barrier]. *)
module Spin_barrier : sig
  type t

  val create : parties:int -> t Aprof_vm.Program.t
  val wait : t -> unit Aprof_vm.Program.t
end
