(** Sorting kernels over simulated memory — the Figure 10 workload
    (selection sort) plus friends with different asymptotics, used by the
    cost-function fitting examples. *)

(** [selection_sort_run ~n ~seed] sorts a random [n]-cell array inside
    routine [selection_sort]: rms = drms = n, cost = Θ(n²). *)
val selection_sort_run : n:int -> seed:int -> Workload.t

(** [insertion_sort_run ~n ~seed]: Θ(n²) worst, Θ(n) on sorted input. *)
val insertion_sort_run : n:int -> seed:int -> Workload.t

(** [merge_sort_run ~n ~seed]: Θ(n log n). *)
val merge_sort_run : n:int -> seed:int -> Workload.t

(** [binary_search_run ~n ~lookups ~seed]: [lookups] searches in a sorted
    array inside routine [binary_search], each Θ(log n). *)
val binary_search_run : n:int -> lookups:int -> seed:int -> Workload.t

(** DSL fragments, reusable from other workloads: sort [n] cells starting
    at the given address. *)
val selection_sort : Aprof_vm.Program.addr -> int -> unit Aprof_vm.Program.t

val insertion_sort : Aprof_vm.Program.addr -> int -> unit Aprof_vm.Program.t
val merge_sort : Aprof_vm.Program.addr -> int -> unit Aprof_vm.Program.t

val specs : Workload.spec list
