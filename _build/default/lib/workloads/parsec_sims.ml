open Aprof_vm.Program
module Sync = Aprof_vm.Sync
module Device = Aprof_vm.Device
module Rng = Aprof_util.Rng

(* ------------------------------------------------------------------ *)
(* fluidanimate: iterated grid stencil with barriers.  Particles live
   in a shared array; each step every worker recomputes densities over
   its band reading one halo cell on each side — cells its neighbours
   wrote in the previous step. *)

let fluidanimate ~workers ~particles ~steps ~seed:_ =
  let workers = max 1 workers in
  let main =
    call "fluid_main"
      (* double-buffered grids: each step reads the generation the other
         threads finished writing before the previous barrier, which makes
         the halo reads thread-induced without racing *)
      (let* grid_a = alloc particles in
       let* grid_b = alloc particles in
       let* () = Blocks.write_fill grid_a particles (fun i -> (i * 13) land 0xff) in
       let* () = Blocks.write_fill grid_b particles (fun _ -> 0) in
       let* bar = Blocks.Spin_barrier.create ~parties:workers in
       Blocks.run_workers workers (fun w ->
           call "fluid_worker"
             (let lo, hi = Blocks.band w ~of_:workers ~total:particles in
              for_ 1 steps (fun s ->
                  let src = if s land 1 = 1 then grid_a else grid_b in
                  let dst = if s land 1 = 1 then grid_b else grid_a in
                  let* () =
                    call "compute_forces"
                      (for_ lo (hi - 1) (fun i ->
                           let* c = read (src + i) in
                           let* l = if i > 0 then read (src + i - 1) else return 0 in
                           let* r =
                             if i < particles - 1 then read (src + i + 1)
                             else return 0
                           in
                           let* () = compute 2 in
                           write (dst + i) ((l + (2 * c) + r) / 4)))
                  in
                  Blocks.Spin_barrier.wait bar))))
  in
  { Workload.programs = [ main ]; devices = [] }

(* ------------------------------------------------------------------ *)
(* bodytrack: per-frame particle filter.  The main thread refills one
   reused frame buffer from disk; workers score the shared particle set
   against it, then the main thread resamples the particles. *)

let bodytrack ~workers ~frames ~particles ~seed =
  let workers = max 1 workers in
  let frame_cells = 48 in
  let rng = Rng.create seed in
  let video =
    Array.init (frames * frame_cells) (fun _ -> Rng.int rng 256)
  in
  let main =
    call "bodytrack_main"
      (let* frame = alloc frame_cells in
       let* parts = alloc particles in
       let* weights = alloc particles in
       let* () = Blocks.write_fill parts particles (fun i -> i * 3) in
       let* bar = Blocks.Spin_barrier.create ~parties:(workers + 1) in
       let* fd = sys_open "video" in
       let* _tids =
         Blocks.spawn_all
           (List.init workers (fun w ->
                call "track_worker"
                  (let lo, hi = Blocks.band w ~of_:workers ~total:particles in
                   for_ 1 frames (fun _ ->
                       let* () = Blocks.Spin_barrier.wait bar in
                       (* frame ready *)
                       let* () =
                         call "eval_likelihood"
                           (for_ lo (hi - 1) (fun i ->
                                let* p = read (parts + i) in
                                let* pix = read (frame + (p mod frame_cells)) in
                                let* () = compute 3 in
                                write (weights + i) ((p + pix) land 0xff)))
                       in
                       Blocks.Spin_barrier.wait bar))))
       in
       let* () =
         for_ 1 frames (fun _ ->
             let* _ = sys_read fd frame frame_cells in
             let* () = Blocks.Spin_barrier.wait bar in
             (* workers score *)
             let* () = Blocks.Spin_barrier.wait bar in
             call "resample"
               (for_ 0 (particles - 1) (fun i ->
                    let* w = read (weights + i) in
                    let* p = read (parts + i) in
                    let* () = compute 1 in
                    write (parts + i) ((p + w) land 0xfff))))
       in
       (* Workers finish their last barrier_wait before exiting; joining
          them is safe because the loop counts match. *)
       Blocks.join_all _tids)
  in
  { Workload.programs = [ main ]; devices = [ ("video", Device.file video) ] }

(* ------------------------------------------------------------------ *)
(* swaptions: workers price disjoint swaptions by Monte Carlo on private
   scratch memory; the only shared traffic is reading the parameters the
   main thread wrote. *)

let swaptions ~workers ~swaptions ~trials ~seed:_ =
  let workers = max 1 workers in
  let main =
    call "swaptions_main"
      (let* params = alloc swaptions in
       let* results = alloc swaptions in
       let* () = Blocks.write_fill params swaptions (fun i -> 100 + (i * 7)) in
       Blocks.run_workers workers (fun w ->
           call "hjm_worker"
             (let lo, hi = Blocks.band w ~of_:workers ~total:swaptions in
              let* scratch = alloc 16 in
              for_ lo (hi - 1) (fun s ->
                  call "price_swaption"
                    (let* p = read (params + s) in
                     let* sum =
                       fold_range 1 trials 0 (fun t acc ->
                           let* () =
                             Blocks.write_fill scratch 16 (fun i ->
                                 (p * (t + i)) land 0xffff)
                           in
                           let* v = Blocks.read_sum scratch 16 in
                           let* () = compute 8 in
                           return (acc + (v mod 97)))
                     in
                     write (results + s) (sum / max trials 1))))))
  in
  { Workload.programs = [ main ]; devices = [] }

(* ------------------------------------------------------------------ *)
(* x264: encode frames; each worker's motion search reads the reference
   frame written by all workers during the previous frame. *)

let x264 ~workers ~frames ~mbs ~seed =
  let workers = max 1 workers in
  let rng = Rng.create seed in
  let video = Array.init (frames * mbs) (fun _ -> Rng.int rng 256) in
  let main =
    call "x264_main"
      (let* current = alloc mbs in
       (* two reconstruction frames: motion estimation references the
          *previous* frame (read-only this phase) while this frame's
          reconstruction is written — racing is structural otherwise *)
       let* recon_a = alloc mbs in
       let* recon_b = alloc mbs in
       let* () = Blocks.write_fill recon_a mbs (fun _ -> 0) in
       let* () = Blocks.write_fill recon_b mbs (fun _ -> 0) in
       let* bar = Blocks.Spin_barrier.create ~parties:(workers + 1) in
       let* fd = sys_open "video" in
       let* tids =
         Blocks.spawn_all
           (List.init workers (fun w ->
                call "encode_worker"
                  (let lo, hi = Blocks.band w ~of_:workers ~total:mbs in
                   for_ 1 frames (fun f ->
                       let reff = if f land 1 = 1 then recon_a else recon_b in
                       let out = if f land 1 = 1 then recon_b else recon_a in
                       let* () = Blocks.Spin_barrier.wait bar in
                       let* () =
                         call "motion_search"
                           (for_ lo (hi - 1) (fun mb ->
                                let* cur = read (current + mb) in
                                (* candidate motion vectors roam across
                                   the whole reference frame, i.e. into
                                   regions other workers reconstructed *)
                                let* best =
                                  fold_range 0 2 0 (fun k acc ->
                                      let cand = (mb + 17 + (k * 23)) mod mbs in
                                      let* r = read (reff + cand) in
                                      let* () = compute 2 in
                                      return (acc + r))
                                in
                                write (out + mb) ((cur + best) / 4)))
                       in
                       Blocks.Spin_barrier.wait bar))))
       in
       let* () =
         for_ 1 frames (fun _ ->
             let* _ = sys_read fd current mbs in
             let* () = Blocks.Spin_barrier.wait bar in
             Blocks.Spin_barrier.wait bar)
       in
       Blocks.join_all tids)
  in
  { Workload.programs = [ main ]; devices = [ ("video", Device.file video) ] }

(* ------------------------------------------------------------------ *)
(* canneal: simulated annealing over a shared netlist; every move reads
   two elements last written by whichever thread moved them. *)

let canneal ~workers ~elements ~moves ~seed:_ =
  let workers = max 1 workers in
  let main =
    call "canneal_main"
      (let* netlist = alloc elements in
       let* () = Blocks.write_fill netlist elements (fun i -> i) in
       let* lock = Sync.Mutex.create () in
       Blocks.run_workers workers (fun _w ->
           call "anneal_worker"
             (for_ 1 moves (fun _ ->
                  call "swap_cost"
                    (let* i = random_int elements in
                     let* j = random_int elements in
                     Sync.Mutex.with_lock lock
                       (let* a = read (netlist + i) in
                        let* b = read (netlist + j) in
                        let* () = compute 3 in
                        let* () = write (netlist + i) b in
                        write (netlist + j) a))))))
  in
  { Workload.programs = [ main ]; devices = [] }

(* ------------------------------------------------------------------ *)
(* ferret: a four-stage pipeline (load -> extract -> index -> rank)
   chained by channels; queries arrive from disk, candidates come out of
   a shared index table written at startup. *)

let ferret ~workers:_ ~queries ~seed =
  let feat_cells = 12 in
  let index_cells = 64 in
  let rng = Rng.create seed in
  let images = Array.init (queries * feat_cells) (fun _ -> Rng.int rng 256) in
  let main =
    call "ferret_main"
      (let* q_load = Sync.Channel.create 4 in
       let* q_extract = Sync.Channel.create 4 in
       let* q_index = Sync.Channel.create 4 in
       let* feats = alloc (2 * feat_cells) in
       (* two rotating feature slots, recycled only after the final stage
          releases them *)
       let* slots_free = sem_create 2 in
       let* cands = alloc (2 * 4) in
       let* index = alloc index_cells in
       let* () = Blocks.write_fill index index_cells (fun i -> (i * 37) land 0xff) in
       let* out = alloc 1 in
       let* () = write out 0 in
       let load_stage =
         call "load_stage"
           (let* fd = sys_open "imagedb" in
            let* buf = alloc feat_cells in
            for_ 0 (queries - 1) (fun q ->
                let* _ = sys_read fd buf feat_cells in
                let slot = q mod 2 in
                let* () = sem_wait slots_free in
                let* () =
                  Blocks.copy ~src:buf ~dst:(feats + (slot * feat_cells))
                    feat_cells
                in
                Sync.Channel.send q_load q))
       in
       let extract_stage =
         call "extract_stage"
           (for_ 0 (queries - 1) (fun _ ->
                let* q = Sync.Channel.recv q_load in
                let slot = q mod 2 in
                let* () =
                  call "extract_features"
                    (let* s = Blocks.read_sum (feats + (slot * feat_cells)) feat_cells in
                     let* () = compute 6 in
                     write (feats + (slot * feat_cells)) (s land 0xff))
                in
                Sync.Channel.send q_extract q))
       in
       let index_stage =
         call "index_stage"
           (for_ 0 (queries - 1) (fun _ ->
                let* q = Sync.Channel.recv q_extract in
                let slot = q mod 2 in
                let* () =
                  call "index_lookup"
                    (let* f = read (feats + (slot * feat_cells)) in
                     for_ 0 3 (fun c ->
                         let* v = read (index + ((f + (c * 17)) mod index_cells)) in
                         let* () = compute 2 in
                         write (cands + (slot * 4) + c) v))
                in
                Sync.Channel.send q_index q))
       in
       let rank_stage =
         call "rank_stage"
           (for_ 0 (queries - 1) (fun _ ->
                let* q = Sync.Channel.recv q_index in
                let slot = q mod 2 in
                let* () =
                  call "rank_candidates"
                    (let* s = Blocks.read_sum (cands + (slot * 4)) 4 in
                     let* best = read out in
                     let* () = compute 2 in
                     write out (max best (s mod 1000)))
                in
                sem_post slots_free))
       in
       let* tids = Blocks.spawn_all [ load_stage; extract_stage; index_stage; rank_stage ] in
       Blocks.join_all tids)
  in
  { Workload.programs = [ main ]; devices = [ ("imagedb", Device.file images) ] }

(* ------------------------------------------------------------------ *)
(* streamcluster: blocks of points stream in from the network into one
   reused buffer; workers assign points to shared medians each round. *)

let streamcluster ~workers ~blocks ~block_points ~seed =
  let workers = max 1 workers in
  let medians = 4 in
  let main =
    call "streamcluster_main"
      (let* block = alloc block_points in
       let* centers = alloc medians in
       let* () = Blocks.write_fill centers medians (fun i -> i * 50) in
       let* assign = alloc block_points in
       let* bar = Blocks.Spin_barrier.create ~parties:(workers + 1) in
       let* fd = sys_open "net" in
       let* tids =
         Blocks.spawn_all
           (List.init workers (fun w ->
                call "cluster_worker"
                  (let lo, hi = Blocks.band w ~of_:workers ~total:block_points in
                   for_ 1 blocks (fun _ ->
                       let* () = Blocks.Spin_barrier.wait bar in
                       let* () =
                         call "assign_points"
                           (for_ lo (hi - 1) (fun i ->
                                let* p = read (block + i) in
                                let* best =
                                  fold_range 0 (medians - 1) 0 (fun m acc ->
                                      let* c = read (centers + m) in
                                      let* () = compute 1 in
                                      return (if abs (p - c) < abs (p - acc) then c else acc))
                                in
                                write (assign + i) best))
                       in
                       Blocks.Spin_barrier.wait bar))))
       in
       let* () =
         for_ 1 blocks (fun b ->
             let* _ = sys_read fd block block_points in
             let* () = Blocks.Spin_barrier.wait bar in
             let* () = Blocks.Spin_barrier.wait bar in
             call "update_centers"
               (for_ 0 (medians - 1) (fun m ->
                    let* c = read (centers + m) in
                    let* a = read (assign + (m * block_points / medians)) in
                    let* () = compute 2 in
                    write (centers + m) ((c + a + b) / 2))))
       in
       Blocks.join_all tids)
  in
  {
    Workload.programs = [ main ];
    devices = [ ("net", Device.stream (fun i -> (i * 97 * seed) land 0xff)) ];
  }

(* ------------------------------------------------------------------ *)
(* blackscholes: one bulk load of option parameters, then fully
   independent pricing over disjoint bands. *)

let blackscholes ~workers ~options ~seed =
  let workers = max 1 workers in
  let rng = Rng.create seed in
  let option_data = Array.init options (fun _ -> 50 + Rng.int rng 100) in
  let main =
    call "blackscholes_main"
      (let* data = alloc options in
       let* prices = alloc options in
       let* fd = sys_open "options" in
       let* _ = sys_read fd data options in
       Blocks.run_workers workers (fun w ->
           call "bs_worker"
             (let lo, hi = Blocks.band w ~of_:workers ~total:options in
              for_ lo (hi - 1) (fun i ->
                  call "bs_price"
                    (let* s = read (data + i) in
                     let* () = compute 10 in
                     write (prices + i) ((s * 7) mod 1000))))))
  in
  {
    Workload.programs = [ main ];
    devices = [ ("options", Device.file option_data) ];
  }

(* ------------------------------------------------------------------ *)

let specs =
  [
    {
      Workload.name = "fluidanimate";
      suite = Workload.Parsec;
      description = "barrier-synchronized particle grid stencil";
      make =
        (fun ~threads ~scale ~seed ->
          fluidanimate ~workers:threads ~particles:scale ~steps:8 ~seed);
    };
    {
      Workload.name = "bodytrack";
      suite = Workload.Parsec;
      description = "particle filter over streamed video frames";
      make =
        (fun ~threads ~scale ~seed ->
          bodytrack ~workers:threads ~frames:(max 2 (scale / 40))
            ~particles:scale ~seed);
    };
    {
      Workload.name = "swaptions";
      suite = Workload.Parsec;
      description = "independent Monte Carlo swaption pricing";
      make =
        (fun ~threads ~scale ~seed ->
          swaptions ~workers:threads ~swaptions:(max 4 (scale / 8)) ~trials:6
            ~seed);
    };
    {
      Workload.name = "x264";
      suite = Workload.Parsec;
      description = "frame encoder with cross-thread reference frames";
      make =
        (fun ~threads ~scale ~seed ->
          x264 ~workers:threads ~frames:(max 2 (scale / 30)) ~mbs:60 ~seed);
    };
    {
      Workload.name = "canneal";
      suite = Workload.Parsec;
      description = "lock-based annealing over a shared netlist";
      make =
        (fun ~threads ~scale ~seed ->
          canneal ~workers:threads ~elements:scale ~moves:(max 8 (scale / 2))
            ~seed);
    };
    {
      Workload.name = "ferret";
      suite = Workload.Parsec;
      description = "four-stage similarity-search pipeline";
      make =
        (fun ~threads:_ ~scale ~seed -> ferret ~workers:4 ~queries:(max 4 (scale / 10)) ~seed);
    };
    {
      Workload.name = "streamcluster";
      suite = Workload.Parsec;
      description = "online clustering of streamed point blocks";
      make =
        (fun ~threads ~scale ~seed ->
          streamcluster ~workers:threads ~blocks:(max 2 (scale / 50))
            ~block_points:48 ~seed);
    };
    {
      Workload.name = "blackscholes";
      suite = Workload.Parsec;
      description = "independent option pricing after one bulk load";
      make =
        (fun ~threads ~scale ~seed ->
          blackscholes ~workers:threads ~options:scale ~seed);
    };
  ]
