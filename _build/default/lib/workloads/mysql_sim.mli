(** A miniature MySQL: heap-file storage scanned through a small buffer
    pool — the Figure 4 case study.

    Rows live on a simulated disk device ([table.ibd]); [mysql_select]
    scans them page by page through one reused buffer-pool frame filled
    by positioned kernel reads.  Exactly as the paper observes, the rms
    of [mysql_select] plateaus near the frame size while the drms tracks
    the number of tuples actually loaded, so only the drms cost plot is
    linear.

    Two entry points:
    - [select_sweep] — one session issuing one full-table scan per table
      size in [row_counts] (the Figure 4 experiment);
    - [mysqlslap] — the load-emulation client: [clients] concurrent
      sessions, each submitting [queries] scans with random row limits,
      sharing global status counters (thread input) on top of the
      buffer-pool refills (external input). *)

val page_rows : int
val row_cells : int

(** [select_sweep ~row_counts ~seed] — scans over tables with the given
    row counts. *)
val select_sweep : row_counts:int list -> seed:int -> Workload.t

(** [mysqlslap ~clients ~queries ~rows ~seed] — concurrent scan load on
    one [rows]-row table. *)
val mysqlslap : clients:int -> queries:int -> rows:int -> seed:int -> Workload.t

val spec : Workload.spec
