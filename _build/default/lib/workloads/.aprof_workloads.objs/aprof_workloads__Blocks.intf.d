lib/workloads/blocks.mli: Aprof_vm Program
