lib/workloads/blocks.ml: Aprof_vm List
