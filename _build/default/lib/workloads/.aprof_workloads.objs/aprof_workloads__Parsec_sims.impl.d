lib/workloads/parsec_sims.ml: Aprof_util Aprof_vm Array Blocks List Workload
