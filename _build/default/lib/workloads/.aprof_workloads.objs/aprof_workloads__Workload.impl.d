lib/workloads/workload.ml: Aprof_vm
