lib/workloads/omp_sims2.ml: Aprof_util Aprof_vm Array Blocks List Workload
