lib/workloads/omp_sims2.mli: Workload
