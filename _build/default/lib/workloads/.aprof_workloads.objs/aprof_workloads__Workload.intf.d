lib/workloads/workload.mli: Aprof_vm
