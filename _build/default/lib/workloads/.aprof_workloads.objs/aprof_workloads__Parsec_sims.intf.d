lib/workloads/parsec_sims.mli: Workload
