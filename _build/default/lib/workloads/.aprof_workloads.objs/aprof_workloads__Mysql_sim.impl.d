lib/workloads/mysql_sim.ml: Aprof_util Aprof_vm Array Blocks List Workload
