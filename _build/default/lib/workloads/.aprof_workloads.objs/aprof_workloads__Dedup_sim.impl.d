lib/workloads/dedup_sim.ml: Aprof_util Aprof_vm Array Blocks List Workload
