lib/workloads/sorting.mli: Aprof_vm Workload
