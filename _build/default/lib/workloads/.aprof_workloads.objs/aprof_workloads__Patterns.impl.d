lib/workloads/patterns.ml: Aprof_vm Workload
