lib/workloads/micro.ml: Aprof_trace Aprof_util List
