lib/workloads/vips_sim.mli: Workload
