lib/workloads/omp_sims.ml: Aprof_util Aprof_vm Array Blocks List Workload
