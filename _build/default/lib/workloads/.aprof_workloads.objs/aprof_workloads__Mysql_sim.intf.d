lib/workloads/mysql_sim.mli: Workload
