lib/workloads/dedup_sim.mli: Workload
