lib/workloads/patterns.mli: Workload
