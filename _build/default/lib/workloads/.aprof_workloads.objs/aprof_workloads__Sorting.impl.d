lib/workloads/sorting.ml: Aprof_vm Workload
