lib/workloads/omp_sims.mli: Workload
