lib/workloads/micro.mli: Aprof_trace
