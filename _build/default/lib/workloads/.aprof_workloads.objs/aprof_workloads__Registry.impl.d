lib/workloads/registry.ml: Dedup_sim List Mysql_sim Omp_sims Omp_sims2 Parsec_sims Patterns Sorting Vips_sim Workload
