(** Miniatures of the remaining PARSEC 2.1 benchmarks used in the
    evaluation (vips and dedup have dedicated modules).  Each reproduces
    its original's communication structure, which is what determines its
    drms/rms signature:

    - [fluidanimate]: barrier-synchronized grid stencil; workers read
      halo cells written by neighbour threads (thread input).
    - [bodytrack]: frames stream from disk into a reused buffer
      (external input per frame); workers score shared particles against
      each frame (thread + external).
    - [swaptions]: embarrassingly parallel Monte Carlo over privately
      owned state; dynamic input only at work distribution.
    - [x264]: per-frame encoding where motion estimation reads the
      reference frame reconstructed by other workers (thread) and the
      current frame from disk (external).
    - [canneal]: lock-protected random element swaps over a shared
      netlist (thread).
    - [ferret]: four-stage similarity-search pipeline over channels
      (thread + external image loads).
    - [streamcluster]: network point stream into a reused block
      (external) clustered against shared medians (thread).
    - [blackscholes]: one bulk option load from disk, then independent
      pricing (external once, minimal thread). *)

val fluidanimate : workers:int -> particles:int -> steps:int -> seed:int -> Workload.t

val bodytrack : workers:int -> frames:int -> particles:int -> seed:int -> Workload.t

val swaptions : workers:int -> swaptions:int -> trials:int -> seed:int -> Workload.t

val x264 : workers:int -> frames:int -> mbs:int -> seed:int -> Workload.t
val canneal : workers:int -> elements:int -> moves:int -> seed:int -> Workload.t
val ferret : workers:int -> queries:int -> seed:int -> Workload.t

val streamcluster :
  workers:int -> blocks:int -> block_points:int -> seed:int -> Workload.t

val blackscholes : workers:int -> options:int -> seed:int -> Workload.t

val specs : Workload.spec list
