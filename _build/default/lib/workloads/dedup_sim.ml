open Aprof_vm.Program
module Sync = Aprof_vm.Sync
module Device = Aprof_vm.Device
module Rng = Aprof_util.Rng

let n_bufs = 10
let max_chunk = 64
let min_chunk = 16
let table_buckets = 97

(* Content-dependent chunk length, as dedup's rolling fingerprint would
   produce: deterministic per chunk index but widely spread. *)
let chunk_len idx =
  min_chunk + (idx * 2654435761 land 0xFFF) mod (max_chunk - min_chunk + 1)

let enc ~dup ~buf ~len = (((if dup then 1 else 0) * 16) + buf) * 65536 + len

let dec msg =
  let len = msg mod 65536 in
  let buf = msg / 65536 mod 16 in
  let dup = msg / 65536 / 16 = 1 in
  (dup, buf, len)

type shared = {
  free_slots : Sync.Channel.t; (* buffer indices ready for refill *)
  chunks : Sync.Channel.t; (* filled buffers awaiting hashing *)
  out_ch : Sync.Channel.t; (* hashed chunks awaiting writing *)
  bufs : addr array;
  out_bufs : addr array; (* compressed output, written by workers *)
  table : addr; (* shared dedup hash table *)
  table_lock : Sync.Mutex.t;
  ring : addr; (* recent-chunk ring: workers publish, the writer scans *)
  progress : addr;
}

let ring_cells = 16

let reader sh ~archive_cells =
  call "reader_thread"
    (let* fd = sys_open "archive" in
     let rec go idx consumed =
       if consumed >= archive_cells then return ()
       else begin
         let len = min (chunk_len idx) (archive_cells - consumed) in
         let* slot = Sync.Channel.recv sh.free_slots in
         let* got = sys_read fd sh.bufs.(slot) len in
         if got = 0 then return ()
         else
           let* () =
             Sync.Channel.send sh.chunks (enc ~dup:false ~buf:slot ~len:got)
           in
           go (idx + 1) (consumed + got)
       end
     in
     go 0 0)

let chunk_worker sh =
  call "chunk_worker"
    (let rec serve () =
       let* msg = Sync.Channel.recv sh.chunks in
       if msg < 0 then return ()
       else begin
         let _, buf, len = dec msg in
         let* h =
           call "compute_hash"
             (let* sum = Blocks.read_sum sh.bufs.(buf) len in
              let* () = compute (len / 4) in
              return ((sum * 31) + len))
         in
         let* dup =
           call "dedup_lookup"
             (Sync.Mutex.with_lock sh.table_lock
                (let bucket = sh.table + (abs h mod table_buckets) in
                 let* existing = read bucket in
                 if existing = 0 then
                   let* () = write bucket (abs h + 1) in
                   return false
                 else begin
                   let* () = compute 1 in
                   return (existing = abs h + 1)
                 end))
         in
         let* () =
           Sync.Mutex.with_lock sh.table_lock
             (write (sh.ring + (abs h mod ring_cells)) (abs h land 0xff))
         in
         let* () =
           when_ (not dup)
             (call "compress_chunk"
                (for_ 0 (len - 1) (fun c ->
                     let* v = read (sh.bufs.(buf) + c) in
                     let* () = compute 1 in
                     write (sh.out_bufs.(buf) + c) ((v * 7) land 0xff))))
         in
         let* () = Sync.Channel.send sh.out_ch (enc ~dup ~buf ~len) in
         serve ()
       end
     in
     serve ())

let writer sh =
  call "writer_thread"
    (let* fd = sys_open "store" in
     let* idx_fd = sys_open "index" in
     let* meta = alloc 4 in
     let flush_one msg =
       let dup, buf, len = dec msg in
       if dup then compute 1
       else
         let* _sum = Blocks.read_sum sh.out_bufs.(buf) len in
         let* _ = sys_write fd sh.out_bufs.(buf) len in
         return ()
     in
     let rec serve seq =
       let* msg = Sync.Channel.recv sh.out_ch in
       if msg < 0 then return ()
       else
         let* () =
           call "write_chunk"
             ((* the recent-chunk ring the workers keep publishing to *)
              let* _r =
                Sync.Mutex.with_lock sh.table_lock
                  (Blocks.read_sum sh.ring ring_cells)
              in
              let* () = flush_one msg in
              (* consult the on-disk container index: the number of
                 lookups depends on the chunk, and every pread refreshes
                 the same 4 staging cells, so the drms of a call spreads
                 far beyond its rms — dedup's profile-richness engine *)
              let polls = 1 + (seq * 2654435761 land 63) in
              let* () =
                for_ 1 polls (fun _ ->
                    let* _ = sys_pread idx_fd meta 4 ~pos:(seq mod 60 * 4) in
                    let* _m = Blocks.read_sum meta 4 in
                    return ())
              in
              let* p = read sh.progress in
              write sh.progress (p + 1))
         in
         let _, buf, _ = dec msg in
         let* () = Sync.Channel.send sh.free_slots buf in
         serve (seq + 1)
     in
     serve 0)

let pipeline ~workers ~archive_cells ~seed =
  let workers = max 1 workers in
  let rng = Rng.create seed in
  (* Repetitive content so real duplicates occur. *)
  let archive = Array.init archive_cells (fun _ -> Rng.int rng 64) in
  let main =
    call "dedup_main"
      (let* free_slots = Sync.Channel.create n_bufs in
       let* chunks = Sync.Channel.create n_bufs in
       let* out_ch = Sync.Channel.create n_bufs in
       let* table = alloc table_buckets in
       let* () = Blocks.write_fill table table_buckets (fun _ -> 0) in
       let* table_lock = Sync.Mutex.create () in
       let* ring = alloc ring_cells in
       let* () = Blocks.write_fill ring ring_cells (fun _ -> 0) in
       let* progress = alloc 1 in
       let* () = write progress 0 in
       let rec alloc_bufs k acc =
         if k = 0 then return (Array.of_list (List.rev acc))
         else
           let* a = alloc max_chunk in
           alloc_bufs (k - 1) (a :: acc)
       in
       let* bufs = alloc_bufs n_bufs [] in
       let* out_bufs = alloc_bufs n_bufs [] in
       let sh =
         { free_slots; chunks; out_ch; bufs; out_bufs; table; table_lock;
           ring; progress }
       in
       let* () = for_ 0 (n_bufs - 1) (fun i -> Sync.Channel.send free_slots i) in
       let* rtid = spawn (reader sh ~archive_cells) in
       let* wtids = Blocks.spawn_all (List.init workers (fun _ -> chunk_worker sh)) in
       let* otid = spawn (writer sh) in
       let* () = join rtid in
       let* () = for_ 1 workers (fun _ -> Sync.Channel.send sh.chunks (-1)) in
       let* () = Blocks.join_all wtids in
       let* () = Sync.Channel.send sh.out_ch (-1) in
       join otid)
  in
  {
    Workload.programs = [ main ];
    devices =
      [
        ("archive", Device.file archive);
        ("store", Device.sink ());
        ("index", Device.file (Array.init 256 (fun i -> (i * 41) land 0xff)));
      ];
  }

let spec =
  {
    Workload.name = "dedup";
    suite = Workload.Parsec;
    description = "pipelined deduplicating compressor with variable chunks";
    make =
      (fun ~threads ~scale ~seed ->
        pipeline ~workers:threads ~archive_cells:(scale * 40) ~seed);
  }
