(** The two dynamic-workload patterns of Section 2, as runnable VM
    programs. *)

(** Figure 2, producer-consumer: the producer writes [n] values to one
    shared cell under the classic three-semaphore protocol; the consumer
    reads each.  Expected on the [consumer] routine: rms = 1,
    drms = [n]. *)
val producer_consumer : n:int -> Workload.t

(** Figure 3, buffered data streaming: [stream_reader] fills a 2-cell
    buffer from an external stream [n] times and processes [b[0]] after
    each refill.  Expected on [stream_reader]: rms = 1 (well, the single
    distinct buffered cell), drms = [n]. *)
val stream_reader : n:int -> Workload.t

(** [specs] registers both patterns (the [scale] parameter is [n]). *)
val specs : Workload.spec list
