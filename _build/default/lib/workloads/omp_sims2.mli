(** The remaining SPEC OMP2012-style kernels, completing the 14-program
    suite.  Distinct parallel shapes from {!Omp_sims}:

    - [bt331]: block-structured solver; threads sweep block rows and
      exchange block boundaries each phase;
    - [botsspar]: sparse LU factorization as a task DAG (diagonal ->
      panel -> trailing updates) distributed through a channel;
    - [ilbdc]: lattice-Boltzmann streaming with a pull scheme over three
      distribution directions, double buffered;
    - [applu]: SSOR with *pipelined* wavefronts: point-to-point semaphore
      handoff between neighbouring threads instead of global barriers;
    - [bwaves]: two coupled fields under a 5-point stencil;
    - [fma3d]: finite elements gathering shared node data and
      scatter-adding forces under striped locks. *)

val bt331 : workers:int -> blocks:int -> block:int -> steps:int -> seed:int -> Workload.t

val botsspar : workers:int -> panels:int -> seed:int -> Workload.t
val ilbdc : workers:int -> cells:int -> steps:int -> seed:int -> Workload.t
val applu : workers:int -> rows:int -> cols:int -> sweeps:int -> seed:int -> Workload.t
val bwaves : workers:int -> cells:int -> steps:int -> seed:int -> Workload.t

val fma3d :
  workers:int -> elements:int -> nodes:int -> steps:int -> seed:int -> Workload.t

val specs : Workload.spec list
