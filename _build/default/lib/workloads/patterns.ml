open Aprof_vm.Program

let producer_consumer ~n =
  (* The shared cell and semaphores must exist before either party runs:
     a coordinator thread allocates them and spawns both. *)
  let coordinator =
    let* x = alloc 1 in
    let* empty = sem_create 1 in
    let* full = sem_create 0 in
    let* mutex = sem_create 1 in
    let produce_data i = call "produceData" (write x (i * 7)) in
    let consume_data =
      call "consumeData"
        (let* v = read x in
         compute (1 + (v land 1)))
    in
    let producer =
      call "producer"
        (for_ 1 n (fun i ->
             let* () = sem_wait empty in
             let* () = sem_wait mutex in
             let* () = produce_data i in
             let* () = sem_post mutex in
             sem_post full))
    in
    let consumer =
      call "consumer"
        (for_ 1 n (fun _ ->
             let* () = sem_wait full in
             let* () = sem_wait mutex in
             let* () = consume_data in
             let* () = sem_post mutex in
             sem_post empty))
    in
    let* p = spawn producer in
    let* c = spawn consumer in
    let* () = join p in
    join c
  in
  { Workload.programs = [ coordinator ]; devices = [] }

let stream_reader ~n =
  let reader =
    call "streamReader"
      (let* b = alloc 2 in
       let* fd = sys_open "net" in
       for_ 1 n (fun _ ->
           let* got = sys_read fd b 2 in
           let* () = when_ (got < 2) (compute 1) in
           call "consumeData"
             (let* v = read b in
              compute (1 + (v land 3)))))
  in
  {
    Workload.programs = [ reader ];
    devices = [ ("net", Aprof_vm.Device.stream (fun i -> (i * 31) land 0xff)) ];
  }

let specs =
  [
    {
      Workload.name = "producer_consumer";
      suite = Workload.Micro;
      description = "Figure 2: semaphore producer-consumer over one cell";
      make = (fun ~threads:_ ~scale ~seed:_ -> producer_consumer ~n:scale);
    };
    {
      Workload.name = "stream_reader";
      suite = Workload.Micro;
      description = "Figure 3: buffered reads from an external stream";
      make = (fun ~threads:_ ~scale ~seed:_ -> stream_reader ~n:scale);
    };
  ]
