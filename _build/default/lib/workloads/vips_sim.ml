open Aprof_vm.Program
module Sync = Aprof_vm.Sync
module Device = Aprof_vm.Device
module Rng = Aprof_util.Rng

let width = 16

(* Tiles alternate 8 and 9 rows so the writer sees exactly two region
   sizes — the two rms classes of Figure 6a. *)
let tile_rows_of r = if r mod 2 = 0 then 8 else 9
let max_tile_rows = 9

let tiles_of_height h =
  let rec go r remaining acc =
    if remaining <= 0 then List.rev acc
    else begin
      let rows = min (tile_rows_of r) remaining in
      go (r + 1) (remaining - rows) (rows :: acc)
    end
  in
  go 0 h []

let region_calls ~heights =
  List.fold_left (fun acc h -> acc + List.length (tiles_of_height h)) 0 heights

(* Heights that tile exactly into the 8/9 alternation (no ragged final
   tile), totalling 110 writer calls — the call count of Figure 6. *)
let default_heights = [ 68; 102; 119; 136; 153; 170; 187 ]

(* Channel message encodings (single-int messages keep multi-producer
   channels atomic). *)
let enc_job ~pos ~rows ~buf = (((pos * 64) + rows) * 16) + buf

let dec_job msg =
  let buf = msg mod 16 in
  let rows = msg / 16 mod 64 in
  let pos = msg / 16 / 64 in
  (pos, rows, buf)

let enc_wjob ~seq ~wbuf ~cells = (((seq * 16) + wbuf) * 16384) + cells

let dec_wjob msg =
  let cells = msg mod 16384 in
  let wbuf = msg / 16384 mod 16 in
  let seq = msg / 16384 / 16 in
  (seq, wbuf, cells)

let poison = -1

type shared = {
  jobs : Sync.Channel.t;
  done_ch : Sync.Channel.t;
  wjobs : Sync.Channel.t;
  tile_bufs : addr array; (* the shared pool [im_generate] reads from *)
  wbufs : addr array; (* two rotating write regions *)
  wbuf_free : sem;
  pressure : addr; (* io-pressure cell the workers keep bumping *)
  pressure_lock : Sync.Mutex.t;
  stats : addr;
}

(* One worker: load tile input from disk (external), convolve into the
   assigned shared tile buffer, bump io pressure, report completion. *)
let worker sh _i =
  call "vips_worker"
    (let* fd = sys_open "image.v" in
     let* priv = alloc (max_tile_rows * width) in
     let rec serve () =
       let* msg = Sync.Channel.recv sh.jobs in
       if msg = poison then return ()
       else begin
         let pos, rows, buf = dec_job msg in
         let cells = rows * width in
         let tile = sh.tile_bufs.(buf) in
         let* () =
           call "linear_stage"
             (let* _got = sys_pread fd priv cells ~pos in
              compute rows)
         in
         let* () =
           call "conv_stage"
             (for_ 0 (cells - 1) (fun c ->
                  let* v = read (priv + c) in
                  let* l = if c > 0 then read (priv + c - 1) else return 0 in
                  let* () = compute 1 in
                  write (tile + c) ((v + l) / 2)))
         in
         let* () =
           Sync.Mutex.with_lock sh.pressure_lock
             (let* p = read sh.pressure in
              write sh.pressure (p + 1))
         in
         let* () = Sync.Channel.send sh.done_ch msg in
         serve ()
       end
     in
     serve ())

(* The background flusher of Figure 6. *)
let wbuffer_writer sh =
  call "wbuffer_writer"
    (let* out = sys_open "out.v" in
     let* mfd = sys_open "meta" in
     let* meta = alloc 4 in
     let rec serve () =
       let* msg = Sync.Channel.recv sh.wjobs in
       if msg = poison then return ()
       else begin
         let seq, wbuf, cells = dec_wjob msg in
         let region = sh.wbufs.(wbuf) in
         let* () =
           call "wbuffer_write_thread"
             ((* Drain the region (thread input: the main thread wrote it). *)
              let* _sum = Blocks.read_sum region cells in
              let* _ = sys_write out region cells in
              (* Re-check on-disk metadata a data-dependent number of
                 times: each pread refreshes the same 4 cells, so every
                 round adds 4 induced external first-reads while the rms
                 stays at 4. *)
              let polls = 1 + (seq * 2654435761 land 0x7F) in
              let* () =
                for_ 1 polls (fun _ ->
                    let* _ = sys_pread mfd meta 4 ~pos:(seq mod 50 * 4) in
                    let* _m = Blocks.read_sum meta 4 in
                    return ())
              in
              (* Watch io pressure; workers rewrite it concurrently, so
                 the induced count here varies with the interleaving. *)
              for_ 1 (1 + (seq mod 5)) (fun _ ->
                  let* () =
                    Sync.Mutex.with_lock sh.pressure_lock
                      (let* _p = read sh.pressure in
                       return ())
                  in
                  yield))
         in
         let* () = sem_post sh.wbuf_free in
         serve ()
       end
     in
     serve ())

(* Dispatch all tiles of one image and reduce every completed tile out of
   the shared pool; ship each reduced tile to the writer. *)
let im_generate sh ~n_bufs ~img_base ~h ~seq0 =
  call "im_generate"
    (let tiles = Array.of_list (tiles_of_height h) in
     let n_tiles = Array.length tiles in
     let pos_of = Array.make n_tiles 0 in
     let () =
       let acc = ref img_base in
       Array.iteri
         (fun i rows ->
           pos_of.(i) <- !acc;
           acc := !acc + (rows * width))
         tiles
     in
     let send_job i buf =
       Sync.Channel.send sh.jobs (enc_job ~pos:pos_of.(i) ~rows:tiles.(i) ~buf)
     in
     let prefill = min n_bufs n_tiles in
     let* () = for_ 0 (prefill - 1) (fun i -> send_job i i) in
     let* _ =
       fold_range 0 (n_tiles - 1) prefill (fun k next ->
           let* msg = Sync.Channel.recv sh.done_ch in
           let _pos, rows, buf = dec_job msg in
           let cells = rows * width in
           let tile = sh.tile_bufs.(buf) in
           (* Reduce the tile (thread input: a worker wrote it). *)
           let* s = Blocks.read_sum tile cells in
           let* old = read (sh.stats + (seq0 + k) mod 4) in
           let* () = write (sh.stats + (seq0 + k) mod 4) (old + s) in
           (* Stage the tile into a free write region. *)
           let* () = sem_wait sh.wbuf_free in
           let wbuf = (seq0 + k) mod 2 in
           let* () = Blocks.copy ~src:tile ~dst:sh.wbufs.(wbuf) cells in
           let* () =
             Sync.Channel.send sh.wjobs (enc_wjob ~seq:(seq0 + k) ~wbuf ~cells)
           in
           (* Hand the freed tile buffer to the next pending tile. *)
           if next < n_tiles then
             let* () = send_job next buf in
             return (next + 1)
           else return next)
     in
     return ())

let pipeline ~workers ~heights ~seed =
  let workers = max 1 workers in
  let n_bufs = workers + 1 in
  let total_cells =
    List.fold_left (fun acc h -> acc + (h * width)) 0 heights
  in
  let rng = Rng.create seed in
  let image = Array.init total_cells (fun _ -> Rng.int rng 256) in
  let meta = Array.init 256 (fun i -> (i * 17) land 0xff) in
  let main =
    call "vips_main"
      (let* jobs = Sync.Channel.create (2 * workers) in
       let* done_ch = Sync.Channel.create (2 * workers) in
       let* wjobs = Sync.Channel.create 2 in
       let* wbuf_free = sem_create 2 in
       let* pressure = alloc 1 in
       let* () = write pressure 0 in
       let* pressure_lock = Sync.Mutex.create () in
       let* stats = alloc 4 in
       let* () = Blocks.write_fill stats 4 (fun _ -> 0) in
       let alloc_bufs n cells =
         let rec go k acc =
           if k = 0 then return (Array.of_list (List.rev acc))
           else
             let* a = alloc cells in
             go (k - 1) (a :: acc)
         in
         go n []
       in
       let* tile_bufs = alloc_bufs n_bufs (max_tile_rows * width) in
       let* wbufs = alloc_bufs 2 (max_tile_rows * width) in
       let sh =
         {
           jobs;
           done_ch;
           wjobs;
           tile_bufs;
           wbufs;
           wbuf_free;
           pressure;
           pressure_lock;
           stats;
         }
       in
       let* wtids = Blocks.spawn_all (List.init workers (fun i -> worker sh i)) in
       let* writer_tid = spawn (wbuffer_writer sh) in
       let* _ =
         fold_range 0
           (List.length heights - 1)
           (0, 0)
           (fun i (img_base, seq0) ->
             let h = List.nth heights i in
             let* () = im_generate sh ~n_bufs ~img_base ~h ~seq0 in
             return
               (img_base + (h * width), seq0 + List.length (tiles_of_height h)))
       in
       let* () = for_ 1 workers (fun _ -> Sync.Channel.send sh.jobs poison) in
       let* () = Sync.Channel.send sh.wjobs poison in
       let* () = Blocks.join_all wtids in
       join writer_tid)
  in
  {
    Workload.programs = [ main ];
    devices =
      [
        ("image.v", Device.file image);
        ("meta", Device.file meta);
        ("out.v", Device.sink ());
      ];
  }

let spec =
  {
    Workload.name = "vips";
    suite = Workload.Parsec;
    description = "threaded image pipeline with background write buffering";
    make =
      (fun ~threads ~scale ~seed ->
        (* Scale stretches the image heights proportionally. *)
        let heights =
          List.map (fun h -> max 16 (h * scale / 100)) default_heights
        in
        pipeline ~workers:threads ~heights ~seed);
  }
