(** Miniatures of SPEC OMP2012-style kernels: barrier-parallel numeric
    codes whose dynamic input is almost entirely shared-memory traffic
    between worker threads — the paper's observation that the OMP2012
    suite clusters at thread input >= 69% (Figure 15) follows from this
    structure.  External input is limited to loading parameters once.

    Eight kernels with genuinely different parallel shapes:
    - [nab] / [md]: molecular dynamics over shared position/force arrays
      (all-to-all and neighbour-list variants);
    - [smithwa]: Smith-Waterman wavefront dynamic programming, blocks
      depend on left/top blocks computed by other threads;
    - [kdtree]: parallel k-d tree construction and querying;
    - [botsalgn]: task-pool pairwise sequence alignments;
    - [imagick]: 2-D convolution with halo exchange;
    - [swim]: 1-D shallow-water stencil;
    - [mgrid]: red-black relaxation sweeps. *)

val nab : workers:int -> atoms:int -> steps:int -> seed:int -> Workload.t
val md : workers:int -> atoms:int -> steps:int -> seed:int -> Workload.t
val smithwa : workers:int -> seq_len:int -> seed:int -> Workload.t
val kdtree : workers:int -> points:int -> queries:int -> seed:int -> Workload.t
val botsalgn : workers:int -> sequences:int -> seed:int -> Workload.t
val imagick : workers:int -> rows:int -> cols:int -> sweeps:int -> seed:int -> Workload.t
val swim : workers:int -> cells:int -> steps:int -> seed:int -> Workload.t
val mgrid : workers:int -> cells:int -> sweeps:int -> seed:int -> Workload.t

val specs : Workload.spec list
