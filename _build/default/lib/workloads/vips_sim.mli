(** A miniature of the vips image-processing pipeline (PARSEC), the
    paper's second case study (Figures 5, 6 and 13b).

    Structure, mirroring the original's threaded evaluation:

    - worker threads pull tile jobs from a channel, load their tile's
      input rows from disk into a private reused buffer (external input),
      convolve, and write the result into one of a pool of shared tile
      buffers;
    - the main thread's [im_generate] dispatches tiles and reduces every
      completed tile out of the shared buffers (thread input): the tile
      buffers are reused, so its rms plateaus near the pool size while
      its drms tracks the whole image — reproducing Figure 5;
    - a background [wbuffer_write_thread] flushes completed regions to
      disk out of two rotating write buffers, polling both an on-disk
      metadata block (external input, variable length per call) and a
      shared io-pressure counter that workers keep updating (thread
      input, scheduling-dependent) — reproducing the Figure 6 effect
      where the rms collapses all 110 calls onto two input sizes while
      the drms separates nearly all of them. *)

(** [pipeline ~workers ~heights ~seed] processes one image per entry of
    [heights] (rows of width {!width}). *)
val pipeline : workers:int -> heights:int list -> seed:int -> Workload.t

val width : int

(** [region_calls ~heights] is how many [wbuffer_write_thread] calls a
    run will perform (to pick heights hitting the paper's 110). *)
val region_calls : heights:int list -> int

(** Default heights giving roughly 110 writer calls. *)
val default_heights : int list

val spec : Workload.spec
