(** A miniature of PARSEC's dedup: a pipelined compressor with
    content-variable chunk sizes.

    reader -> chunk workers -> writer, connected by channels over a small
    pool of shared staging buffers: the reader fills buffers from disk
    (external input), workers hash chunks out of the shared buffers and
    probe a shared deduplication table (thread input), and the writer
    flushes unique chunks.  Chunk lengths vary per chunk, which is what
    gives dedup the extreme drms profile richness of Figure 11. *)

val pipeline :
  workers:int -> archive_cells:int -> seed:int -> Workload.t

val spec : Workload.spec
