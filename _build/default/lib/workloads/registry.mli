(** All registered benchmark workloads, by name and by suite. *)

val all : Workload.spec list

(** [find name] — the spec registered under [name], if any. *)
val find : string -> Workload.spec option

(** [by_suite suite] in registration order. *)
val by_suite : Workload.suite -> Workload.spec list

val names : unit -> string list

(** The suite-defaults used by the benchmark harness: thread count,
    scale, and seed per spec. *)
val default_threads : int

val default_scale : int
val default_seed : int
