open Aprof_vm.Program

let fill_random a n =
  for_ 0 (n - 1) (fun i ->
      let* v = random_int 1_000_000 in
      write (a + i) v)

let selection_sort a n =
  call "selection_sort"
    (for_ 0 (n - 2) (fun i ->
         let* mi =
           fold_range (i + 1) (n - 1) i (fun j mi ->
               let* vj = read (a + j) in
               let* vm = read (a + mi) in
               let* () = compute 1 in
               return (if vj < vm then j else mi))
         in
         when_ (mi <> i)
           (let* vi = read (a + i) in
            let* vm = read (a + mi) in
            let* () = write (a + i) vm in
            write (a + mi) vi)))

let insertion_sort a n =
  call "insertion_sort"
    (for_ 1 (n - 1) (fun i ->
         let* key = read (a + i) in
         let rec shift j =
           if j < 0 then write (a + 0) key
           else
             let* vj = read (a + j) in
             let* () = compute 1 in
             if vj > key then
               let* () = write (a + j + 1) vj in
               shift (j - 1)
             else write (a + j + 1) key
         in
         shift (i - 1)))

let merge_sort a n =
  let merge lo mid hi tmp =
    (* copy [lo, hi) to tmp, then merge back *)
    let* () =
      for_ lo (hi - 1) (fun i ->
          let* v = read (a + i) in
          write (tmp + i) v)
    in
    let rec emit i j k =
      if k >= hi then return ()
      else if i >= mid then
        let* v = read (tmp + j) in
        let* () = write (a + k) v in
        emit i (j + 1) (k + 1)
      else if j >= hi then
        let* v = read (tmp + i) in
        let* () = write (a + k) v in
        emit (i + 1) j (k + 1)
      else
        let* vi = read (tmp + i) in
        let* vj = read (tmp + j) in
        let* () = compute 1 in
        if vi <= vj then
          let* () = write (a + k) vi in
          emit (i + 1) j (k + 1)
        else
          let* () = write (a + k) vj in
          emit i (j + 1) (k + 1)
    in
    emit lo mid lo
  in
  call "merge_sort"
    (let* tmp = alloc n in
     let rec go lo hi =
       if hi - lo <= 1 then return ()
       else begin
         let mid = (lo + hi) / 2 in
         let* () = go lo mid in
         let* () = go mid hi in
         merge lo mid hi tmp
       end
     in
     go 0 n)

let binary_search a n key =
  call "binary_search"
    (let rec go lo hi =
       if lo >= hi then return (-1)
       else begin
         let mid = (lo + hi) / 2 in
         let* v = read (a + mid) in
         let* () = compute 1 in
         if v = key then return mid
         else if v < key then go (mid + 1) hi
         else go lo mid
       end
     in
     let* _ = go 0 n in
     return ())

let with_random_array ~n body =
  let* a = alloc n in
  let* () = fill_random a n in
  body a

let one_thread p = { Workload.programs = [ p ]; devices = [] }

let selection_sort_run ~n ~seed:_ =
  one_thread (with_random_array ~n (fun a -> selection_sort a n))

let insertion_sort_run ~n ~seed:_ =
  one_thread (with_random_array ~n (fun a -> insertion_sort a n))

let merge_sort_run ~n ~seed:_ =
  one_thread (with_random_array ~n (fun a -> merge_sort a n))

let binary_search_run ~n ~lookups ~seed:_ =
  one_thread
    (let* a = alloc n in
     (* Sorted input so the search contract holds. *)
     let* () = for_ 0 (n - 1) (fun i -> write (a + i) (2 * i)) in
     for_ 1 lookups (fun _ ->
         let* key = random_int (2 * n) in
         binary_search a n key))

let specs =
  let make f = fun ~threads:_ ~scale ~seed -> f ~n:scale ~seed in
  [
    {
      Workload.name = "selection_sort";
      suite = Workload.Micro;
      description = "Figure 10: quadratic selection sort on a random array";
      make = make selection_sort_run;
    };
    {
      Workload.name = "insertion_sort";
      suite = Workload.Micro;
      description = "insertion sort on a random array";
      make = make insertion_sort_run;
    };
    {
      Workload.name = "merge_sort";
      suite = Workload.Micro;
      description = "n log n merge sort on a random array";
      make = make merge_sort_run;
    };
    {
      Workload.name = "binary_search";
      suite = Workload.Micro;
      description = "logarithmic searches in a sorted array";
      make =
        (fun ~threads:_ ~scale ~seed ->
          binary_search_run ~n:scale ~lookups:50 ~seed);
    };
  ]
