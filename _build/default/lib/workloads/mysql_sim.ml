open Aprof_vm.Program
module Device = Aprof_vm.Device
module Rng = Aprof_util.Rng

let page_rows = 8
let row_cells = 4
let page_cells = page_rows * row_cells

(* Table data as stored on the simulated disk: row i is
   [id; a; b; checksum]. *)
let table_device ~rows ~seed =
  let rng = Rng.create seed in
  let data =
    Array.init (rows * row_cells) (fun cell ->
        let i = cell / row_cells in
        match cell mod row_cells with
        | 0 -> i
        | 1 -> Rng.int rng 1000
        | 2 -> Rng.int rng 100
        | _ -> (i * 131) land 0xffff)
  in
  Device.file data

(* One connection's session state: a buffer-pool frame, a row accumulator
   and the descriptors of the shared status area. *)
type session = {
  fd : fd;
  frame : addr; (* the reused buffer-pool page frame *)
  acc : addr; (* running aggregate cells *)
  out_fd : fd;
  status : addr; (* shared server status counters *)
  status_lock : Aprof_vm.Sync.Mutex.t;
}

let status_cells = 4

(* SELECT SUM(a) FROM t LIMIT row_limit: scan pages through the frame. *)
let mysql_select s ~row_limit =
  call "mysql_select"
    (let n_pages = (row_limit + page_rows - 1) / page_rows in
     let* total =
       fold_range 0 (n_pages - 1) 0 (fun p acc ->
           let pos = p * page_cells in
           let* got = sys_pread s.fd s.frame page_cells ~pos in
           let rows_here = min (got / row_cells) (row_limit - (p * page_rows)) in
           let* page_sum =
             fold_range 0 (rows_here - 1) 0 (fun r acc ->
                 let* a = read (s.frame + (r * row_cells) + 1) in
                 let* b = read (s.frame + (r * row_cells) + 2) in
                 let* () = compute 1 in
                 return (acc + a + (b land 1)))
           in
           return (acc + page_sum))
     in
     let* () = write s.acc total in
     write (s.acc + 1) row_limit)

let parse_query =
  call "parse_query" (compute 12)

let update_status s =
  call "update_status"
    (Aprof_vm.Sync.Mutex.with_lock s.status_lock
       (let* q = read s.status in
        let* () = write s.status (q + 1) in
        let* r = read (s.status + 1) in
        write (s.status + 1) (r + 1)))

let send_result s =
  call "send_result"
    (let* _ = sys_write s.out_fd s.acc 2 in
     return ())

let handle_query s ~row_limit =
  call "handle_query"
    (let* () = parse_query in
     let* () = mysql_select s ~row_limit in
     let* () = update_status s in
     send_result s)

let make_session ~status ~status_lock ~table ~client =
  let* fd = sys_open table in
  let* frame = alloc page_cells in
  let* acc = alloc 4 in
  let* out_fd = sys_open client in
  return { fd; frame; acc; out_fd; status; status_lock }

let select_sweep ~row_counts ~seed =
  let max_rows = List.fold_left max 1 row_counts in
  let main =
    call "mysqld"
      (let* status = alloc status_cells in
       let* () = Blocks.write_fill status status_cells (fun _ -> 0) in
       let* status_lock = Aprof_vm.Sync.Mutex.create () in
       let* s = make_session ~status ~status_lock ~table:"table.ibd" ~client:"client" in
       iter_list (fun rows -> handle_query s ~row_limit:rows) row_counts)
  in
  {
    Workload.programs = [ main ];
    devices =
      [
        ("table.ibd", table_device ~rows:max_rows ~seed);
        ("client", Device.sink ());
      ];
  }

let mysqlslap ~clients ~queries ~rows ~seed =
  let main =
    call "mysqld"
      (let* status = alloc status_cells in
       let* () = Blocks.write_fill status status_cells (fun _ -> 0) in
       let* status_lock = Aprof_vm.Sync.Mutex.create () in
       Blocks.run_workers clients (fun _c ->
           call "client_session"
             (let* s =
                make_session ~status ~status_lock ~table:"table.ibd"
                  ~client:"client"
              in
              for_ 1 queries (fun _ ->
                  let* limit = random_int rows in
                  handle_query s ~row_limit:(1 + limit)))))
  in
  {
    Workload.programs = [ main ];
    devices =
      [
        ("table.ibd", table_device ~rows ~seed);
        ("client", Device.sink ());
      ];
  }

let spec =
  {
    Workload.name = "mysqlslap";
    suite = Workload.App;
    description =
      "miniature MySQL under mysqlslap-style concurrent scan load";
    make =
      (fun ~threads ~scale ~seed ->
        mysqlslap ~clients:threads ~queries:(max 1 (scale / 10)) ~rows:scale
          ~seed);
  }
