(** The hand-built micro traces of Figure 1, used as exact test vectors.

    Each returns the merged trace plus the routine table, so the expected
    rms/drms values of the paper can be asserted against any profiler. *)

(** Figure 1a: routine [f] in thread 0 reads [x] twice; thread 1's [g]
    overwrites [x] between the reads.  Expected: rms(f) = 1, drms(f) = 2. *)
val fig1a : unit -> Aprof_trace.Trace.t * Aprof_trace.Routine_table.t

(** Figure 1b: [f] reads [x], thread 1's [g] overwrites it, [f]'s child
    [h] reads it (induced), then [f] reads it again (not induced).
    Expected: rms(f) = rms(h) = 1, drms(f) = 2, drms(h) = 1. *)
val fig1b : unit -> Aprof_trace.Trace.t * Aprof_trace.Routine_table.t

(** A single-threaded trace with a two-level call where the child re-reads
    a location the parent already read — exercises the ancestor-decrement
    path (lines 6-8 of Figure 8). *)
val ancestor_decrement : unit -> Aprof_trace.Trace.t * Aprof_trace.Routine_table.t

(** Buffered external input: one thread fills a one-cell buffer through
    [kernelToUser] [n] times, reading it after each fill inside routine
    [consume].  Expected: drms(consume per call) = 1, rms of later calls
    = 0... summed at the caller [main]: drms(main) = n, rms(main) = 1. *)
val external_refill : n:int -> Aprof_trace.Trace.t * Aprof_trace.Routine_table.t
