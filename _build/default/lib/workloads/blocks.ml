open Aprof_vm.Program

let read_sum a n =
  fold_range 0 (n - 1) 0 (fun i acc ->
      let* v = read (a + i) in
      return (acc + v))

let write_fill a n f = for_ 0 (n - 1) (fun i -> write (a + i) (f i))

let copy ~src ~dst n =
  for_ 0 (n - 1) (fun i ->
      let* v = read (src + i) in
      write (dst + i) v)

let spawn_all bodies =
  let rec go acc = function
    | [] -> return (List.rev acc)
    | body :: rest ->
      let* tid = spawn body in
      go (tid :: acc) rest
  in
  go [] bodies

let join_all tids = iter_list join tids

let run_workers n body =
  let* tids = spawn_all (List.init n body) in
  join_all tids

let band i ~of_ ~total =
  let base = total / of_ and extra = total mod of_ in
  let lo = (i * base) + min i extra in
  let hi = lo + base + (if i < extra then 1 else 0) in
  (lo, hi)

module Spin_barrier = struct
  type t = {
    arrivals : addr;
    lock : Aprof_vm.Sync.Mutex.t;
    bar : barrier;
  }

  let create ~parties =
    let* arrivals = alloc 1 in
    let* () = write arrivals 0 in
    let* lock = Aprof_vm.Sync.Mutex.create () in
    let* bar = barrier_create parties in
    return { arrivals; lock; bar }

  let wait t =
    call "omp_barrier"
      (let* () =
         Aprof_vm.Sync.Mutex.with_lock t.lock
           (let* c = read t.arrivals in
            write t.arrivals (c + 1))
       in
       let* () =
         for_ 1 2 (fun _ ->
             let* () =
               Aprof_vm.Sync.Mutex.with_lock t.lock
                 (let* _c = read t.arrivals in
                  return ())
             in
             yield)
       in
       barrier_wait t.bar)
end
