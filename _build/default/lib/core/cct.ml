type node = int

type t = {
  by_edge : (int * int, node) Hashtbl.t; (* (parent, routine) -> node *)
  parents : int Aprof_util.Vec.t; (* -1 for the root *)
  routines : int Aprof_util.Vec.t; (* -1 for the root *)
}

let root = 0

let create () =
  let t =
    {
      by_edge = Hashtbl.create 256;
      parents = Aprof_util.Vec.create ();
      routines = Aprof_util.Vec.create ();
    }
  in
  Aprof_util.Vec.push t.parents (-1);
  Aprof_util.Vec.push t.routines (-1);
  t

let check t n =
  if n < 0 || n >= Aprof_util.Vec.length t.parents then
    invalid_arg (Printf.sprintf "Cct: unknown node %d" n)

let child t parent routine =
  check t parent;
  match Hashtbl.find_opt t.by_edge (parent, routine) with
  | Some n -> n
  | None ->
    let n = Aprof_util.Vec.length t.parents in
    Hashtbl.add t.by_edge (parent, routine) n;
    Aprof_util.Vec.push t.parents parent;
    Aprof_util.Vec.push t.routines routine;
    n

let parent t n =
  check t n;
  if n = root then None else Some (Aprof_util.Vec.get t.parents n)

let routine t n =
  check t n;
  if n = root then invalid_arg "Cct.routine: root has no routine";
  Aprof_util.Vec.get t.routines n

let path t n =
  check t n;
  let rec up n acc =
    if n = root then acc
    else up (Aprof_util.Vec.get t.parents n) (Aprof_util.Vec.get t.routines n :: acc)
  in
  up n []

let size t = Aprof_util.Vec.length t.parents

let pp_path name t ppf n =
  Format.fprintf ppf "%s"
    (String.concat " -> " (List.map name (path t n)))
