type key = { tid : int; routine : int }

type point = {
  input : int;
  calls : int;
  max_cost : int;
  min_cost : int;
  sum_cost : float;
  sum_cost_sq : float;
}

type routine_data = {
  drms_points : point list;
  rms_points : point list;
  activations : int;
  sum_rms : float;
  sum_drms : float;
  total_cost : float;
  first_read_ops : int;
  induced_thread_ops : int;
  induced_external_ops : int;
}

(* Internal mutable accumulator; converted to [routine_data] on demand. *)
type cell = {
  drms_tbl : (int, point ref) Hashtbl.t;
  rms_tbl : (int, point ref) Hashtbl.t;
  mutable acts : int;
  mutable s_rms : float;
  mutable s_drms : float;
  mutable s_cost : float;
  mutable plain : int;
  mutable ind_thread : int;
  mutable ind_external : int;
}

type t = (key, cell) Hashtbl.t

let create () : t = Hashtbl.create 64

let fresh_cell () =
  {
    drms_tbl = Hashtbl.create 8;
    rms_tbl = Hashtbl.create 8;
    acts = 0;
    s_rms = 0.;
    s_drms = 0.;
    s_cost = 0.;
    plain = 0;
    ind_thread = 0;
    ind_external = 0;
  }

let cell t key =
  match Hashtbl.find_opt t key with
  | Some c -> c
  | None ->
    let c = fresh_cell () in
    Hashtbl.add t key c;
    c

let add_point tbl ~input ~cost =
  let fcost = float_of_int cost in
  match Hashtbl.find_opt tbl input with
  | None ->
    Hashtbl.add tbl input
      (ref
         {
           input;
           calls = 1;
           max_cost = cost;
           min_cost = cost;
           sum_cost = fcost;
           sum_cost_sq = fcost *. fcost;
         })
  | Some p ->
    let v = !p in
    p :=
      {
        v with
        calls = v.calls + 1;
        max_cost = max v.max_cost cost;
        min_cost = min v.min_cost cost;
        sum_cost = v.sum_cost +. fcost;
        sum_cost_sq = v.sum_cost_sq +. (fcost *. fcost);
      }

let record_activation t ~tid ~routine ~rms ~drms ~cost =
  let c = cell t { tid; routine } in
  c.acts <- c.acts + 1;
  c.s_rms <- c.s_rms +. float_of_int rms;
  c.s_drms <- c.s_drms +. float_of_int drms;
  c.s_cost <- c.s_cost +. float_of_int cost;
  add_point c.drms_tbl ~input:drms ~cost;
  add_point c.rms_tbl ~input:rms ~cost

let record_ops t ~tid ~routine ~plain ~induced_thread ~induced_external =
  let c = cell t { tid; routine } in
  c.plain <- c.plain + plain;
  c.ind_thread <- c.ind_thread + induced_thread;
  c.ind_external <- c.ind_external + induced_external

type ops_handle = cell

let ops_handle t ~tid ~routine = cell t { tid; routine }
let bump_plain c = c.plain <- c.plain + 1
let bump_induced_thread c = c.ind_thread <- c.ind_thread + 1
let bump_induced_external c = c.ind_external <- c.ind_external + 1

let points_of_tbl tbl =
  Hashtbl.fold (fun _ p acc -> !p :: acc) tbl []
  |> List.sort (fun a b -> compare a.input b.input)

let data_of_cell c =
  {
    drms_points = points_of_tbl c.drms_tbl;
    rms_points = points_of_tbl c.rms_tbl;
    activations = c.acts;
    sum_rms = c.s_rms;
    sum_drms = c.s_drms;
    total_cost = c.s_cost;
    first_read_ops = c.plain;
    induced_thread_ops = c.ind_thread;
    induced_external_ops = c.ind_external;
  }

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []

let data t key = Option.map data_of_cell (Hashtbl.find_opt t key)

let routines t =
  let seen = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace seen k.routine ()) t;
  Hashtbl.fold (fun r () acc -> r :: acc) seen []
  |> List.sort compare

let merge_cells target src =
  let merge_tbl dst src_tbl =
    Hashtbl.iter
      (fun input p ->
        let v = !p in
        match Hashtbl.find_opt dst input with
        | None -> Hashtbl.add dst input (ref v)
        | Some q ->
          let w = !q in
          q :=
            {
              w with
              calls = w.calls + v.calls;
              max_cost = max w.max_cost v.max_cost;
              min_cost = min w.min_cost v.min_cost;
              sum_cost = w.sum_cost +. v.sum_cost;
              sum_cost_sq = w.sum_cost_sq +. v.sum_cost_sq;
            })
      src_tbl
  in
  merge_tbl target.drms_tbl src.drms_tbl;
  merge_tbl target.rms_tbl src.rms_tbl;
  target.acts <- target.acts + src.acts;
  target.s_rms <- target.s_rms +. src.s_rms;
  target.s_drms <- target.s_drms +. src.s_drms;
  target.s_cost <- target.s_cost +. src.s_cost;
  target.plain <- target.plain + src.plain;
  target.ind_thread <- target.ind_thread + src.ind_thread;
  target.ind_external <- target.ind_external + src.ind_external

let merge_threads t =
  let merged : (int, cell) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter
    (fun k src ->
      let dst =
        match Hashtbl.find_opt merged k.routine with
        | Some c -> c
        | None ->
          let c = fresh_cell () in
          Hashtbl.add merged k.routine c;
          c
      in
      merge_cells dst src)
    t;
  Hashtbl.fold (fun r c acc -> (r, data_of_cell c) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let total_activations t = Hashtbl.fold (fun _ c acc -> acc + c.acts) t 0

let restore_point t ~tid ~routine ~metric (p : point) =
  let c = cell t { tid; routine } in
  let tbl = match metric with `Drms -> c.drms_tbl | `Rms -> c.rms_tbl in
  match Hashtbl.find_opt tbl p.input with
  | None -> Hashtbl.add tbl p.input (ref p)
  | Some q ->
    let w = !q in
    q :=
      {
        w with
        calls = w.calls + p.calls;
        max_cost = max w.max_cost p.max_cost;
        min_cost = min w.min_cost p.min_cost;
        sum_cost = w.sum_cost +. p.sum_cost;
        sum_cost_sq = w.sum_cost_sq +. p.sum_cost_sq;
      }

let restore_aggregates t ~tid ~routine ~activations ~sum_rms ~sum_drms
    ~total_cost =
  let c = cell t { tid; routine } in
  c.acts <- activations;
  c.s_rms <- sum_rms;
  c.s_drms <- sum_drms;
  c.s_cost <- total_cost

let pp name ppf t =
  let entries =
    keys t
    |> List.sort (fun a b -> compare (a.routine, a.tid) (b.routine, b.tid))
  in
  List.iter
    (fun k ->
      match data t k with
      | None -> ()
      | Some d ->
        Format.fprintf ppf "@[<v 2>%s (thread %d): %d activations@," (name k.routine)
          k.tid d.activations;
        Format.fprintf ppf "drms points:";
        List.iter
          (fun p -> Format.fprintf ppf "@, input=%d calls=%d max_cost=%d" p.input p.calls p.max_cost)
          d.drms_points;
        Format.fprintf ppf "@]@.")
    entries
