let distinct_points ~metric (d : Profile.routine_data) =
  match metric with
  | `Drms -> List.length d.Profile.drms_points
  | `Rms -> List.length d.Profile.rms_points

let profile_richness (d : Profile.routine_data) =
  let n_rms = distinct_points ~metric:`Rms d in
  let n_drms = distinct_points ~metric:`Drms d in
  if n_rms = 0 then 0.
  else float_of_int (n_drms - n_rms) /. float_of_int n_rms

let volume ~sum_rms ~sum_drms =
  if sum_drms <= 0. then 0. else 1. -. (sum_rms /. sum_drms)

let dynamic_input_volume profile =
  let sum_rms = ref 0. and sum_drms = ref 0. in
  List.iter
    (fun key ->
      match Profile.data profile key with
      | None -> ()
      | Some d ->
        sum_rms := !sum_rms +. d.Profile.sum_rms;
        sum_drms := !sum_drms +. d.Profile.sum_drms)
    (Profile.keys profile);
  volume ~sum_rms:!sum_rms ~sum_drms:!sum_drms

let routine_input_volume (d : Profile.routine_data) =
  volume ~sum_rms:d.Profile.sum_rms ~sum_drms:d.Profile.sum_drms

let total_first_reads (d : Profile.routine_data) =
  d.Profile.first_read_ops + d.Profile.induced_thread_ops
  + d.Profile.induced_external_ops

let thread_input (d : Profile.routine_data) =
  let total = total_first_reads d in
  if total = 0 then 0.
  else float_of_int d.Profile.induced_thread_ops /. float_of_int total

let external_input (d : Profile.routine_data) =
  let total = total_first_reads d in
  if total = 0 then 0.
  else float_of_int d.Profile.induced_external_ops /. float_of_int total

let induced_breakdown (d : Profile.routine_data) =
  let induced = d.Profile.induced_thread_ops + d.Profile.induced_external_ops in
  if induced = 0 then None
  else begin
    let t = float_of_int d.Profile.induced_thread_ops /. float_of_int induced in
    Some (t, 1. -. t)
  end

type curve = (float * float) list

let standard_fractions = [ 0.005; 0.01; 0.02; 0.04; 0.08; 0.16; 0.32; 0.64; 1.0 ]

let curve_of_values values =
  match values with
  | [] -> List.map (fun f -> (f, 0.)) standard_fractions
  | _ :: _ ->
    List.map
      (fun f -> (f, Aprof_util.Stats.value_at_top_fraction ~fraction:f values))
      standard_fractions

let per_routine_values f profile =
  Profile.merge_threads profile |> List.map (fun (_, d) -> f d)

let richness_curve profile =
  let values =
    Profile.merge_threads profile
    |> List.filter_map (fun (_, d) ->
           if distinct_points ~metric:`Rms d = 0 then None
           else Some (profile_richness d))
  in
  curve_of_values values

let input_volume_curve profile =
  curve_of_values
    (per_routine_values (fun d -> 100. *. routine_input_volume d) profile)

let thread_input_curve profile =
  curve_of_values (per_routine_values (fun d -> 100. *. thread_input d) profile)

let external_input_curve profile =
  curve_of_values
    (per_routine_values (fun d -> 100. *. external_input d) profile)

let routine_breakdown profile =
  Profile.merge_threads profile
  |> List.filter_map (fun (r, d) ->
         let total = total_first_reads d in
         if total = 0 then None
         else begin
           let t = 100. *. thread_input d in
           let e = 100. *. external_input d in
           Some (r, t, e)
         end)
  |> List.sort (fun (_, t1, e1) (_, t2, e2) -> compare (t2 +. e2) (t1 +. e1))

let suite_characterization profile =
  let thread = ref 0 and external_ = ref 0 in
  List.iter
    (fun (_, d) ->
      thread := !thread + d.Profile.induced_thread_ops;
      external_ := !external_ + d.Profile.induced_external_ops)
    (Profile.merge_threads profile);
  let total = !thread + !external_ in
  if total = 0 then None
  else begin
    let t = 100. *. float_of_int !thread /. float_of_int total in
    Some (t, 100. -. t)
  end
