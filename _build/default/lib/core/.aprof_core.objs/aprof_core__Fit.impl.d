lib/core/fit.ml: Float List Profile
