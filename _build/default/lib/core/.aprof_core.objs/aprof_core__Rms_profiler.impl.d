lib/core/rms_profiler.ml: Aprof_shadow Aprof_trace Aprof_util Cost_model Hashtbl Profile
