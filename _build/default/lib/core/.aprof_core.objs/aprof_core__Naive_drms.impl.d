lib/core/naive_drms.ml: Aprof_trace Aprof_util Cost_model Hashtbl List Profile
