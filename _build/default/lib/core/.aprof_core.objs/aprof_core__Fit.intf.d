lib/core/fit.mli: Profile
