lib/core/drms_profiler.mli: Aprof_trace Cct Profile
