lib/core/rms_profiler.mli: Aprof_trace Profile
