lib/core/cct.ml: Aprof_util Format Hashtbl List Printf String
