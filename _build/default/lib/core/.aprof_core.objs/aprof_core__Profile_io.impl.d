lib/core/profile_io.ml: Buffer Hashtbl In_channel List Printf Profile String
