lib/core/cct.mli: Format
