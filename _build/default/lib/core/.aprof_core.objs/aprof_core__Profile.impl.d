lib/core/profile.ml: Format Hashtbl List Option
