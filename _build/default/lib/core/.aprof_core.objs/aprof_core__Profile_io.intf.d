lib/core/profile_io.mli: Profile
