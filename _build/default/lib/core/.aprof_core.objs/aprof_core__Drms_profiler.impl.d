lib/core/drms_profiler.ml: Aprof_shadow Aprof_trace Aprof_util Array Cct Cost_model Hashtbl Profile
