lib/core/profile.mli: Aprof_trace Format
