lib/core/comm_profiler.ml: Aprof_shadow Aprof_trace Aprof_util Format Hashtbl List
