lib/core/cost_model.mli: Aprof_trace Aprof_util
