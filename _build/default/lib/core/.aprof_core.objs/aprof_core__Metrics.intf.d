lib/core/metrics.mli: Profile
