lib/core/cost_model.ml: Aprof_trace Aprof_util Float Hashtbl
