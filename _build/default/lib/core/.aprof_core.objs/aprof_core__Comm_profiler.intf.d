lib/core/comm_profiler.mli: Aprof_trace Format
