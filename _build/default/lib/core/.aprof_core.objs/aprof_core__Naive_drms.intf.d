lib/core/naive_drms.mli: Aprof_trace Profile
