lib/core/metrics.ml: Aprof_util List Profile
