type model = Constant | Logarithmic | Linear | Linearithmic | Quadratic | Cubic

let model_name = function
  | Constant -> "O(1)"
  | Logarithmic -> "O(log n)"
  | Linear -> "O(n)"
  | Linearithmic -> "O(n log n)"
  | Quadratic -> "O(n^2)"
  | Cubic -> "O(n^3)"

let growth model n =
  match model with
  | Constant -> 0.
  | Logarithmic -> log (Float.max n 1.)
  | Linear -> n
  | Linearithmic -> n *. log (Float.max n 1.)
  | Quadratic -> n *. n
  | Cubic -> n *. n *. n

let eval_model model ~a ~b n = a +. (b *. growth model n)

type fit_result = { model : model; a : float; b : float; r_squared : float }

let all_models = [ Constant; Logarithmic; Linear; Linearithmic; Quadratic; Cubic ]

(* Simple linear regression of y against x, returning (intercept, slope). *)
let linreg xs ys =
  let n = float_of_int (List.length xs) in
  let sx = List.fold_left ( +. ) 0. xs in
  let sy = List.fold_left ( +. ) 0. ys in
  let sxx = List.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
  let sxy = List.fold_left2 (fun acc x y -> acc +. (x *. y)) 0. xs ys in
  let denom = (n *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then None
  else begin
    let b = ((n *. sxy) -. (sx *. sy)) /. denom in
    let a = (sy -. (b *. sx)) /. n in
    Some (a, b)
  end

let r_squared ys predicted =
  let n = float_of_int (List.length ys) in
  let mean = List.fold_left ( +. ) 0. ys /. n in
  let ss_tot = List.fold_left (fun acc y -> acc +. ((y -. mean) ** 2.)) 0. ys in
  let ss_res =
    List.fold_left2 (fun acc y p -> acc +. ((y -. p) ** 2.)) 0. ys predicted
  in
  if ss_tot < 1e-12 then if ss_res < 1e-12 then 1. else 0.
  else Float.max 0. (1. -. (ss_res /. ss_tot))

let distinct_inputs points =
  List.sort_uniq compare (List.map fst points) |> List.length

let fit_one model points =
  let xs = List.map (fun (n, _) -> growth model (float_of_int n)) points in
  let ys = List.map snd points in
  match model with
  | Constant ->
    let n = float_of_int (List.length ys) in
    let a = List.fold_left ( +. ) 0. ys /. n in
    let predicted = List.map (fun _ -> a) ys in
    Some { model; a; b = 0.; r_squared = r_squared ys predicted }
  | Logarithmic | Linear | Linearithmic | Quadratic | Cubic -> (
    match linreg xs ys with
    | None -> None
    | Some (a, b) ->
      let predicted = List.map (fun x -> a +. (b *. x)) xs in
      Some { model; a; b; r_squared = r_squared ys predicted })

let fit_models points =
  if distinct_inputs points < 3 then []
  else
    List.filter_map (fun m -> fit_one m points) all_models
    |> List.sort (fun r1 r2 -> compare r2.r_squared r1.r_squared)

let best_fit points =
  match fit_models points with [] -> None | r :: _ -> Some r

let power_law points =
  let usable = List.filter (fun (n, y) -> n > 0 && y > 0.) points in
  if distinct_inputs usable < 3 then None
  else begin
    let xs = List.map (fun (n, _) -> log (float_of_int n)) usable in
    let ys = List.map (fun (_, y) -> log y) usable in
    match linreg xs ys with
    | None -> None
    | Some (a, k) ->
      let predicted = List.map (fun x -> a +. (k *. x)) xs in
      Some (exp a, k, r_squared ys predicted)
  end

let points_of_profile ~metric ~cost (d : Profile.routine_data) =
  let points =
    match metric with
    | `Drms -> d.Profile.drms_points
    | `Rms -> d.Profile.rms_points
  in
  List.map
    (fun (p : Profile.point) ->
      let c =
        match cost with
        | `Max -> float_of_int p.Profile.max_cost
        | `Mean -> p.Profile.sum_cost /. float_of_int p.Profile.calls
      in
      (p.Profile.input, c))
    points
