(** The evaluation metrics of Section 4.1 and the curve/histogram
    extraction behind Figures 11-15.

    All per-routine metrics operate on thread-merged profiles
    ({!Profile.merge_threads}): the paper defines [|rms_r|] and [|drms_r|]
    as the numbers of distinct input sizes collected for routine [r] "by
    all threads". *)

(** Profile richness of one routine: (|drms_r| - |rms_r|) / |rms_r|.
    Positive when the drms collects more distinct input-size points. *)
val profile_richness : Profile.routine_data -> float

(** Dynamic input volume of a whole profile:
    1 - (Σ rms) / (Σ drms) over all routine activations, in [0, 1).
    0 when no dynamic input was observed. *)
val dynamic_input_volume : Profile.t -> float

(** Dynamic input volume restricted to one routine's activations. *)
val routine_input_volume : Profile.routine_data -> float

(** Fraction of a routine's (possibly induced) first-read operations that
    were induced by other threads, in [0,1]; 0 when no first-reads. *)
val thread_input : Profile.routine_data -> float

(** Same, for first-reads induced by the kernel (external input). *)
val external_input : Profile.routine_data -> float

(** Share of a routine's *induced* first-reads attributable to threads
    (the complement is external); [None] when nothing was induced. *)
val induced_breakdown : Profile.routine_data -> (float * float) option

(** A tail-distribution curve: [(x, y)] means "a fraction [x] of routines
    has metric value at least [y]".  The abscissas are the paper's
    0.5%..64% log-spaced grid plus 100%. *)
type curve = (float * float) list

val standard_fractions : float list

(** [richness_curve profile] — Figure 11.  Routines with [|rms_r| = 0]
    (never completing any activation) are skipped. *)
val richness_curve : Profile.t -> curve

(** [input_volume_curve profile] — Figure 12 (values scaled to [0,100]). *)
val input_volume_curve : Profile.t -> curve

(** [thread_input_curve] / [external_input_curve] — Figure 14 (values
    scaled to [0,100]). *)
val thread_input_curve : Profile.t -> curve

val external_input_curve : Profile.t -> curve

(** Per-routine induced-first-read breakdown, routines sorted by
    decreasing total induced percentage — Figure 13.  Each row is
    (routine id, % of first-reads induced by threads, % induced
    externally). *)
val routine_breakdown : Profile.t -> (int * float * float) list

(** Whole-benchmark characterization — one bar of Figure 15:
    (thread %, external %) of all induced first-reads; [None] when the
    benchmark induced nothing. *)
val suite_characterization : Profile.t -> (float * float) option

(** [distinct_points ~metric data] is |drms_r| or |rms_r|. *)
val distinct_points : metric:[ `Drms | `Rms ] -> Profile.routine_data -> int
