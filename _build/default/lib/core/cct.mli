(** Calling context trees: interned (parent, routine) paths.

    Context-sensitive input profiles separate activations of one routine
    by *how it was reached* — e.g. a buffer-copy helper called from the
    I/O path (external-dominated, large drms) versus from initialization
    (tiny constant input).  Node 0 is the synthetic root shared by all
    threads; every other node is created on demand by {!child}. *)

type t

type node = int

val root : node

val create : unit -> t

(** [child t parent routine] is the node for [routine] called from
    context [parent], interning it on first use. *)
val child : t -> node -> int -> node

(** [parent t n] — [None] for {!root}.
    @raise Invalid_argument on an unknown node. *)
val parent : t -> node -> node option

(** [routine t n] is the routine labelling [n].
    @raise Invalid_argument on {!root} or an unknown node. *)
val routine : t -> node -> int

(** [path t n] is the routine path from just below the root down to [n]. *)
val path : t -> node -> int list

(** [size t] is the number of nodes, including the root. *)
val size : t -> int

(** [pp_path routine_name ppf n] renders ["a -> b -> c"]. *)
val pp_path : (int -> string) -> t -> Format.formatter -> node -> unit
