(** Empirical cost function estimation.

    Given the performance points of a routine profile (input size vs.
    worst-case cost), fit the observations against standard complexity
    models by least squares and select the best-explaining model — the
    step that turns the paper's cost plots into an asymptotic guess.

    Two estimators are provided: [fit_models] over a fixed model family
    (constant, log n, n, n log n, n^2, n^3), and [power_law], a log-log
    linear regression reporting an empirical exponent (the approach of
    Goldsmith et al., which the paper cites as [8]). *)

type model = Constant | Logarithmic | Linear | Linearithmic | Quadratic | Cubic

val model_name : model -> string

(** [eval_model m ~a ~b n] is [a + b * g(n)] where [g] is the model's
    growth term. *)
val eval_model : model -> a:float -> b:float -> float -> float

type fit_result = {
  model : model;
  a : float;  (** intercept *)
  b : float;  (** slope on the growth term *)
  r_squared : float;  (** coefficient of determination, in [0, 1] *)
}

(** [fit_models points] fits every model and returns the results sorted
    by decreasing [r_squared]; empty if fewer than 3 distinct points.
    Points are (input size, cost) pairs; non-positive input sizes are
    dropped for logarithmic models. *)
val fit_models : (int * float) list -> fit_result list

(** [best_fit points] is the head of [fit_models], if any. *)
val best_fit : (int * float) list -> fit_result option

(** [power_law points] is [(c, k, r2)] such that cost ≈ c * n^k, from a
    least-squares line through the log-log points; [None] with fewer than
    3 distinct positive points. *)
val power_law : (int * float) list -> (float * float * float) option

(** [points_of_profile ~metric ~cost data] extracts (input, cost) pairs
    from a routine profile, using the worst-case ([`Max]) or mean
    ([`Mean]) cost per input size — the paper plots worst-case. *)
val points_of_profile :
  metric:[ `Drms | `Rms ] ->
  cost:[ `Max | `Mean ] ->
  Profile.routine_data ->
  (int * float) list
