module Event = Aprof_trace.Event

let cost_increment = function
  | Event.Block { units; _ } -> units
  | Event.Read _ | Event.Write _ | Event.Call _ -> 1
  | Event.Return _ | Event.User_to_kernel _ | Event.Kernel_to_user _
  | Event.Acquire _ | Event.Release _ | Event.Alloc _ | Event.Free _
  | Event.Thread_start _ | Event.Thread_exit _ | Event.Switch_thread _ ->
    0

module Counter = struct
  type t = (int, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let counter t tid =
    match Hashtbl.find_opt t tid with
    | Some c -> c
    | None ->
      let c = ref 0 in
      Hashtbl.add t tid c;
      c

  let on_event t e =
    let inc = cost_increment e in
    if inc > 0 then begin
      let c = counter t (Event.tid e) in
      c := !c + inc
    end

  let cost t tid = match Hashtbl.find_opt t tid with Some c -> !c | None -> 0

  let total t = Hashtbl.fold (fun _ c acc -> acc + !c) t 0
end

let simulated_time_ns rng ~ns_per_block ~jitter cost =
  let base = float_of_int cost *. ns_per_block in
  let noise = Aprof_util.Rng.gaussian rng ~mu:1.0 ~sigma:jitter in
  let overhead = 120. in
  Float.max (0.1 *. base) ((base *. noise) +. overhead)
