lib/vm/program.ml:
