lib/vm/sync.ml: Array Program
