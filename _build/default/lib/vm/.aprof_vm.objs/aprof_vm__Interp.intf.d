lib/vm/interp.mli: Aprof_trace Device Program Scheduler
