lib/vm/device.ml: Aprof_util Array
