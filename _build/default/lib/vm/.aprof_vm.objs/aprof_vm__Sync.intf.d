lib/vm/sync.mli: Program
