lib/vm/program.mli:
