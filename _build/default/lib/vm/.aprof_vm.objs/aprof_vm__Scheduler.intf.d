lib/vm/scheduler.mli: Aprof_util
