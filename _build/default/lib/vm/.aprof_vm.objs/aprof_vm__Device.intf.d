lib/vm/device.mli:
