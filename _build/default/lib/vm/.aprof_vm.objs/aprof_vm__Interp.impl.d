lib/vm/interp.ml: Aprof_trace Aprof_util Array Device Hashtbl List Option Printf Program Queue Scheduler String
