lib/vm/scheduler.ml: Aprof_util Printf
