(** Synchronization built on top of the DSL primitives.

    [Mutex] wraps a binary semaphore.  [Channel] is the classic bounded
    producer-consumer buffer (Figure 2 of the paper, generalized to a
    ring buffer): payload and ring indices live in *simulated memory*, so
    data flowing through a channel is genuine shared-memory communication
    and shows up as thread-induced input in the drms. *)

module Mutex : sig
  type t

  val create : unit -> t Program.t
  val lock : t -> unit Program.t
  val unlock : t -> unit Program.t

  (** [with_lock m body] is lock; body; unlock. *)
  val with_lock : t -> 'a Program.t -> 'a Program.t
end

module Channel : sig
  type t

  (** [create capacity] allocates the ring storage and semaphores.
      @raise Invalid_argument if [capacity <= 0] (at build time). *)
  val create : int -> t Program.t

  (** [send ch v] blocks while the channel is full, then enqueues [v]. *)
  val send : t -> Program.value -> unit Program.t

  (** [recv ch] blocks while the channel is empty, then dequeues. *)
  val recv : t -> Program.value Program.t

  (** [try_recv ch] dequeues if a value is ready, without blocking. *)
  val try_recv : t -> Program.value option Program.t

  (** [send_array ch vs] sends elements in order. *)
  val send_array : t -> Program.value array -> unit Program.t
end
