type policy =
  | Round_robin of { slice : int }
  | Random_preemptive of { min_slice : int; max_slice : int }
  | Serialized

type t = { policy : policy; rng : Aprof_util.Rng.t }

let create policy rng =
  (match policy with
  | Round_robin { slice } ->
    if slice <= 0 then invalid_arg "Scheduler: slice must be positive"
  | Random_preemptive { min_slice; max_slice } ->
    if min_slice <= 0 || max_slice < min_slice then
      invalid_arg "Scheduler: bad slice range"
  | Serialized -> ());
  { policy; rng }

let slice t =
  match t.policy with
  | Round_robin { slice } -> slice
  | Random_preemptive { min_slice; max_slice } ->
    Aprof_util.Rng.int_in t.rng min_slice max_slice
  | Serialized -> max_int

let pick t n_ready =
  if n_ready <= 0 then invalid_arg "Scheduler.pick: no runnable thread";
  match t.policy with
  | Round_robin _ | Serialized -> 0
  | Random_preemptive _ -> Aprof_util.Rng.int t.rng n_ready

let policy_name = function
  | Round_robin { slice } -> Printf.sprintf "round-robin(%d)" slice
  | Random_preemptive { min_slice; max_slice } ->
    Printf.sprintf "random(%d-%d)" min_slice max_slice
  | Serialized -> "serialized"
