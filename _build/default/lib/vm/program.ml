type addr = int
type value = int
type sem = int
type barrier = int
type fd = int

type prog =
  | Halt
  | Read of addr * (value -> prog)
  | Write of addr * value * (unit -> prog)
  | Compute of int * (unit -> prog)
  | Enter of string * (unit -> prog)
  | Leave of (unit -> prog)
  | Alloc of int * (addr -> prog)
  | Dealloc of addr * int * (unit -> prog)
  | Sem_create of int * (sem -> prog)
  | Sem_wait of sem * (unit -> prog)
  | Sem_trywait of sem * (bool -> prog)
  | Sem_post of sem * (unit -> prog)
  | Barrier_create of int * (barrier -> prog)
  | Barrier_wait of barrier * (unit -> prog)
  | Spawn of prog * (int -> prog)
  | Join of int * (unit -> prog)
  | Self of (int -> prog)
  | Yield of (unit -> prog)
  | Sys_open of string * (fd -> prog)
  | Sys_read of fd * addr * int * (int -> prog)
  | Sys_pread of fd * addr * int * int * (int -> prog)
  | Sys_write of fd * addr * int * (int -> prog)
  | Sys_close of fd * (unit -> prog)
  | Random_int of int * (int -> prog)

(* Continuation-passing representation: a computation is a function from
   its continuation to the stepped program. *)
type 'a t = ('a -> prog) -> prog

let return x k = k x
let bind m f k = m (fun x -> f x k)
let ( let* ) = bind
let ( >>= ) = bind
let map f m k = m (fun x -> k (f x))

let to_prog (m : unit t) = m (fun () -> Halt)

let read a k = Read (a, k)
let write a v k = Write (a, v, k)
let alloc n k = Alloc (n, k)
let dealloc a n k = Dealloc (a, n, k)
let compute n k = Compute (n, k)

let call name (body : 'a t) : 'a t =
 fun k -> Enter (name, fun () -> body (fun x -> Leave (fun () -> k x)))

let yield k = Yield k
let self k = Self k
let spawn (body : unit t) k = Spawn (to_prog body, k)
let join tid k = Join (tid, k)
let random_int bound k = Random_int (bound, k)

let sem_create n k = Sem_create (n, k)
let sem_wait s k = Sem_wait (s, k)
let sem_trywait s k = Sem_trywait (s, k)
let sem_post s k = Sem_post (s, k)
let barrier_create n k = Barrier_create (n, k)
let barrier_wait b k = Barrier_wait (b, k)

let sys_open name k = Sys_open (name, k)
let sys_read fd buf len k = Sys_read (fd, buf, len, k)
let sys_pread fd buf len ~pos k = Sys_pread (fd, buf, len, pos, k)
let sys_write fd buf len k = Sys_write (fd, buf, len, k)
let sys_close fd k = Sys_close (fd, k)

let rec for_ lo hi f =
  if lo > hi then return ()
  else
    let* () = f lo in
    for_ (lo + 1) hi f

let rec iter_list f = function
  | [] -> return ()
  | x :: xs ->
    let* () = f x in
    iter_list f xs

let rec fold_range lo hi acc f =
  if lo > hi then return acc
  else
    let* acc = f lo acc in
    fold_range (lo + 1) hi acc f

let rec while_ cond body =
  let* c = cond () in
  if c then
    let* () = body in
    while_ cond body
  else return ()

let when_ c m = if c then m else return ()

let unsafe_of_prog p _k = p

let sem_id s = s
let barrier_id b = b
let unsafe_sem_of_id i = i
let unsafe_barrier_of_id i = i
