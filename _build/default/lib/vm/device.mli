(** Simulated external devices: the data sources and sinks behind the
    kernel's system calls.

    A [File] holds finite data with a cursor (disk reads hit end of
    file); a [Stream] produces unbounded generated data (network input);
    a [Sink] swallows output, counting it. *)

type t

(** [file data] is a read/write disk file positioned at 0.  Reads consume
    [data] sequentially; writes append (visible in [written]). *)
val file : int array -> t

(** [stream gen] is an endless input stream whose [i]-th value is
    [gen i] (e.g. seeded random network traffic). *)
val stream : (int -> int) -> t

(** [sink ()] accepts and counts any output, provides no input. *)
val sink : unit -> t

(** [read d n] removes and returns up to [n] next input values ([[||]] at
    end of data). *)
val read : t -> int -> int array

(** [read_at d ~pos n] positioned read: up to [n] values starting at
    absolute offset [pos], leaving the cursor untouched.  Streams
    generate, sinks return [[||]]. *)
val read_at : t -> pos:int -> int -> int array

(** [size d] is the number of stored values ([max_int] for streams, [0]
    for sinks). *)
val size : t -> int

(** [write d values] sends [values] to the device, returning the number
    accepted (all of them, for every device kind). *)
val write : t -> int array -> int

(** [written d] is the total number of values written so far. *)
val written : t -> int

(** [reset d] rewinds cursors (files restart at position 0). *)
val reset : t -> unit
