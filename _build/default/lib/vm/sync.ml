open Program

module Mutex = struct
  type t = sem

  let create () = sem_create 1
  let lock = sem_wait
  let unlock = sem_post

  let with_lock m body =
    let* () = lock m in
    let* x = body in
    let* () = unlock m in
    return x
end

module Channel = struct
  type t = {
    data : addr; (* ring storage: [capacity] cells *)
    head : addr; (* dequeue index cell *)
    tail : addr; (* enqueue index cell *)
    capacity : int;
    items : sem; (* filled slots *)
    spaces : sem; (* free slots *)
    lock : Mutex.t;
  }

  let create capacity =
    if capacity <= 0 then invalid_arg "Channel.create: capacity <= 0";
    let* data = alloc capacity in
    let* head = alloc 1 in
    let* tail = alloc 1 in
    let* () = write head 0 in
    let* () = write tail 0 in
    let* items = sem_create 0 in
    let* spaces = sem_create capacity in
    let* lock = Mutex.create () in
    return { data; head; tail; capacity; items; spaces; lock }

  let send ch v =
    let* () = sem_wait ch.spaces in
    let* () = Mutex.lock ch.lock in
    let* t = read ch.tail in
    let* () = write (ch.data + (t mod ch.capacity)) v in
    let* () = write ch.tail (t + 1) in
    let* () = Mutex.unlock ch.lock in
    sem_post ch.items

  let recv ch =
    let* () = sem_wait ch.items in
    let* () = Mutex.lock ch.lock in
    let* h = read ch.head in
    let* v = read (ch.data + (h mod ch.capacity)) in
    let* () = write ch.head (h + 1) in
    let* () = Mutex.unlock ch.lock in
    let* () = sem_post ch.spaces in
    return v

  let try_recv ch =
    let* ok = sem_trywait ch.items in
    if not ok then return None
    else
      let* () = Mutex.lock ch.lock in
      let* h = read ch.head in
      let* v = read (ch.data + (h mod ch.capacity)) in
      let* () = write ch.head (h + 1) in
      let* () = Mutex.unlock ch.lock in
      let* () = sem_post ch.spaces in
      return (Some v)

  let send_array ch vs =
    for_ 0 (Array.length vs - 1) (fun i -> send ch vs.(i))
end
