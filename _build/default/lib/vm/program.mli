(** The simulated-program DSL.

    Programs are written against this monadic interface and executed by
    {!Interp}, which plays the role Valgrind plays in the paper: every
    read, write, call, return, basic block, synchronization operation and
    system call becomes a trace event.  One DSL step = one scheduling
    point, so thread interleavings are controlled entirely by the
    scheduler policy and seed.

    Values stored in simulated memory are plain integers.  All OCaml-level
    computation between steps is free (it models register arithmetic
    within a basic block); use {!compute} to account basic blocks. *)

type addr = int
type value = int
type sem
type barrier
type fd = int

(** The stepped representation consumed by the interpreter.  Build values
    of this type only through the combinators below. *)
type prog =
  | Halt
  | Read of addr * (value -> prog)
  | Write of addr * value * (unit -> prog)
  | Compute of int * (unit -> prog)
  | Enter of string * (unit -> prog)
  | Leave of (unit -> prog)
  | Alloc of int * (addr -> prog)
  | Dealloc of addr * int * (unit -> prog)
  | Sem_create of int * (sem -> prog)
  | Sem_wait of sem * (unit -> prog)
  | Sem_trywait of sem * (bool -> prog)
  | Sem_post of sem * (unit -> prog)
  | Barrier_create of int * (barrier -> prog)
  | Barrier_wait of barrier * (unit -> prog)
  | Spawn of prog * (int -> prog)
  | Join of int * (unit -> prog)
  | Self of (int -> prog)
  | Yield of (unit -> prog)
  | Sys_open of string * (fd -> prog)
  | Sys_read of fd * addr * int * (int -> prog)
  | Sys_pread of fd * addr * int * int * (int -> prog)
  | Sys_write of fd * addr * int * (int -> prog)
  | Sys_close of fd * (unit -> prog)
  | Random_int of int * (int -> prog)

type 'a t

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val ( >>= ) : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t

(** [to_prog m] closes a thread body into the stepped form. *)
val to_prog : unit t -> prog

(** {1 Memory} *)

(** [read a] loads the value at address [a] (emits a [Read] event). *)
val read : addr -> value t

(** [write a v] stores [v] at [a] (emits a [Write] event). *)
val write : addr -> value -> unit t

(** [alloc n] reserves [n] fresh cells and returns the base address. *)
val alloc : int -> addr t

(** [dealloc a n] releases the block of [n] cells at [a]. *)
val dealloc : addr -> int -> unit t

(** {1 Control} *)

(** [compute n] executes [n] basic blocks worth of local work. *)
val compute : int -> unit t

(** [call name body] runs [body] as an activation of routine [name]:
    emits the [Call]/[Return] pair around it. *)
val call : string -> 'a t -> 'a t

(** [yield] relinquishes the processor without doing work. *)
val yield : unit t

(** [self] is the executing thread's id. *)
val self : int t

(** [spawn body] starts a new thread running [body], returning its id. *)
val spawn : unit t -> int t

(** [join tid] blocks until thread [tid] exits. *)
val join : int -> unit t

(** [random_int bound] draws from the VM's seeded generator: deterministic
    per run, uniform in [0, bound). *)
val random_int : int -> int t

(** {1 Synchronization}

    Semaphore and barrier internals live in the interpreter, not in
    simulated memory, matching the paper's convention of not charging
    memory accesses of semaphore operations to the profiled metric;
    waits/posts still emit [Acquire]/[Release] events so the race
    detector sees the happens-before edges. *)

val sem_create : int -> sem t
val sem_wait : sem -> unit t

(** [sem_trywait s] is [true] (and decrements) when the semaphore was
    positive; [false] without blocking otherwise. *)
val sem_trywait : sem -> bool t
val sem_post : sem -> unit t
val barrier_create : int -> barrier t
val barrier_wait : barrier -> unit t

(** {1 System calls}

    The simulated kernel copies data between devices and simulated
    memory, emitting [Kernel_to_user] / [User_to_kernel] range events
    (Figure 9's event mapping). *)

(** [sys_open name] is a descriptor on the device registered as [name].
    The interpreter fails the run on an unknown device. *)
val sys_open : string -> fd t

(** [sys_read fd buf len] asks the kernel to fill [buf..buf+len-1] from
    the device; returns the number of cells actually transferred (0 at
    end of data). *)
val sys_read : fd -> addr -> int -> int t

(** [sys_pread fd buf len ~pos] positioned read (the paper's [pread64]):
    fills [buf] from absolute device offset [pos] without moving the
    shared cursor, so concurrent readers do not interfere. *)
val sys_pread : fd -> addr -> int -> pos:int -> int t

(** [sys_write fd buf len] sends [buf..buf+len-1] to the device; returns
    the number of cells transferred. *)
val sys_write : fd -> addr -> int -> int t

val sys_close : fd -> unit t

(** {1 Structured helpers} *)

(** [for_ lo hi f] runs [f i] for [i = lo..hi] (no iterations if
    [hi < lo]). *)
val for_ : int -> int -> (int -> unit t) -> unit t

(** [iter_list f xs] sequences [f] over [xs]. *)
val iter_list : ('a -> unit t) -> 'a list -> unit t

(** [fold_range lo hi acc f] threads [acc] through [f lo], ..., [f hi]. *)
val fold_range : int -> int -> 'acc -> (int -> 'acc -> 'acc t) -> 'acc t

(** [while_ cond body] evaluates [cond] and runs [body] until [cond] is
    false. *)
val while_ : (unit -> bool t) -> unit t -> unit t

(** [when_ c m] runs [m] only if [c]. *)
val when_ : bool -> unit t -> unit t

(** [unsafe_of_prog p] wraps a raw stepped program, discarding the
    continuation: only for tests that need to feed the interpreter
    ill-formed programs the combinators cannot produce. *)
val unsafe_of_prog : prog -> unit t

(** Internal identifiers, used by the interpreter. *)
val sem_id : sem -> int

val barrier_id : barrier -> int
val unsafe_sem_of_id : int -> sem
val unsafe_barrier_of_id : int -> barrier
