type kind =
  | File of { data : int Aprof_util.Vec.t; mutable pos : int }
  | Stream of { gen : int -> int; mutable pos : int }
  | Sink

type t = { kind : kind; mutable written : int }

let file data =
  { kind = File { data = Aprof_util.Vec.of_array data; pos = 0 }; written = 0 }

let stream gen = { kind = Stream { gen; pos = 0 }; written = 0 }

let sink () = { kind = Sink; written = 0 }

let read t n =
  if n < 0 then invalid_arg "Device.read: negative count";
  match t.kind with
  | File f ->
    let avail = Aprof_util.Vec.length f.data - f.pos in
    let got = min n (max avail 0) in
    let out = Array.init got (fun i -> Aprof_util.Vec.get f.data (f.pos + i)) in
    f.pos <- f.pos + got;
    out
  | Stream s ->
    let out = Array.init n (fun i -> s.gen (s.pos + i)) in
    s.pos <- s.pos + n;
    out
  | Sink -> [||]

let read_at t ~pos n =
  if n < 0 || pos < 0 then invalid_arg "Device.read_at: negative argument";
  match t.kind with
  | File f ->
    let avail = Aprof_util.Vec.length f.data - pos in
    let got = min n (max avail 0) in
    Array.init got (fun i -> Aprof_util.Vec.get f.data (pos + i))
  | Stream s -> Array.init n (fun i -> s.gen (pos + i))
  | Sink -> [||]

let size t =
  match t.kind with
  | File f -> Aprof_util.Vec.length f.data
  | Stream _ -> max_int
  | Sink -> 0

let write t values =
  t.written <- t.written + Array.length values;
  (match t.kind with
  | File f -> Array.iter (fun v -> Aprof_util.Vec.push f.data v) values
  | Stream _ | Sink -> ());
  Array.length values

let written t = t.written

let reset t =
  t.written <- 0;
  match t.kind with
  | File f -> f.pos <- 0
  | Stream s -> s.pos <- 0
  | Sink -> ()
