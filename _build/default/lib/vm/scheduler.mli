(** Thread-scheduling policies for the interpreter.

    [Round_robin] rotates through runnable threads with a fixed event
    budget per turn.  [Random_preemptive] picks the next thread and its
    slice length at random (seeded) — used by the scheduler-sensitivity
    experiment.  [Serialized] runs each thread until it blocks or exits,
    mimicking Valgrind's big-lock serialization. *)

type policy =
  | Round_robin of { slice : int }
  | Random_preemptive of { min_slice : int; max_slice : int }
  | Serialized

type t

(** [create policy rng] is a fresh scheduler state. *)
val create : policy -> Aprof_util.Rng.t -> t

(** [slice t] is the event budget for the next turn. *)
val slice : t -> int

(** [pick t ready] chooses the index (in [0, length ready)) of the next
    thread to run.  @raise Invalid_argument on an empty ready set. *)
val pick : t -> int -> int

val policy_name : policy -> string
