lib/shadow/shadow_memory.mli:
