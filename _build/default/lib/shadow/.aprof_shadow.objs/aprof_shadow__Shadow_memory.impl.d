lib/shadow/shadow_memory.ml: Array Printf
