(** Instrumentation events.

    This is the vocabulary of Section 3 of the paper: routine activations
    and completions, memory accesses, kernel-mediated I/O
    ([User_to_kernel]/[Kernel_to_user]), and thread switches — extended
    with the events needed by the comparator tools of Section 4
    (basic-block costs for callgrind/aprof, lock operations for helgrind,
    heap events for memcheck). *)

type tid = int
type addr = int
type routine = int

type t =
  | Call of { tid : tid; routine : routine }
      (** Thread [tid] activates [routine]. *)
  | Return of { tid : tid }
      (** Thread [tid] completes its topmost pending activation. *)
  | Read of { tid : tid; addr : addr }  (** Load of one memory cell. *)
  | Write of { tid : tid; addr : addr }  (** Store to one memory cell. *)
  | Block of { tid : tid; units : int }
      (** [units] basic blocks executed by [tid]; the cost metric. *)
  | User_to_kernel of { tid : tid; addr : addr; len : int }
      (** The kernel reads [len] cells starting at [addr] on behalf of
          [tid] (e.g. [write], [sendto]). *)
  | Kernel_to_user of { tid : tid; addr : addr; len : int }
      (** The kernel writes [len] cells starting at [addr] on behalf of
          [tid] (e.g. [read], [recvfrom]); the data is external input. *)
  | Acquire of { tid : tid; lock : int }
      (** [tid] acquires lock/semaphore [lock] (or passes a wait). *)
  | Release of { tid : tid; lock : int }
      (** [tid] releases lock/semaphore [lock] (or posts a signal). *)
  | Alloc of { tid : tid; addr : addr; len : int }
      (** Heap allocation of [len] cells at [addr]. *)
  | Free of { tid : tid; addr : addr; len : int }
      (** Heap release of the block at [addr]. *)
  | Thread_start of { tid : tid }
  | Thread_exit of { tid : tid }
  | Switch_thread of { tid : tid }
      (** Control switches to thread [tid].  Inserted by the trace merge
          (or the VM scheduler) between events of different threads. *)

(** [tid e] is the thread associated with [e]; for [Switch_thread] it is
    the incoming thread. *)
val tid : t -> tid

(** [is_switch e] holds for [Switch_thread]. *)
val is_switch : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [to_line e] serializes [e] on one line; [of_line] parses it back.
    [of_line] returns [Error msg] on malformed input. *)
val to_line : t -> string

val of_line : string -> (t, string) result

val equal : t -> t -> bool
