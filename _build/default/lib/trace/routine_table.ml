type t = {
  by_name : (string, int) Hashtbl.t;
  names : string Aprof_util.Vec.t;
}

let create () =
  { by_name = Hashtbl.create 64; names = Aprof_util.Vec.create () }

let intern t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
    let id = Aprof_util.Vec.length t.names in
    Hashtbl.add t.by_name name id;
    Aprof_util.Vec.push t.names name;
    id

let name t id =
  if id < 0 || id >= Aprof_util.Vec.length t.names then
    invalid_arg (Printf.sprintf "Routine_table.name: unknown id %d" id);
  Aprof_util.Vec.get t.names id

let find t n = Hashtbl.find_opt t.by_name n

let size t = Aprof_util.Vec.length t.names

let iter f t = Aprof_util.Vec.iteri f t.names
