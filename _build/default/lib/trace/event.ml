type tid = int
type addr = int
type routine = int

type t =
  | Call of { tid : tid; routine : routine }
  | Return of { tid : tid }
  | Read of { tid : tid; addr : addr }
  | Write of { tid : tid; addr : addr }
  | Block of { tid : tid; units : int }
  | User_to_kernel of { tid : tid; addr : addr; len : int }
  | Kernel_to_user of { tid : tid; addr : addr; len : int }
  | Acquire of { tid : tid; lock : int }
  | Release of { tid : tid; lock : int }
  | Alloc of { tid : tid; addr : addr; len : int }
  | Free of { tid : tid; addr : addr; len : int }
  | Thread_start of { tid : tid }
  | Thread_exit of { tid : tid }
  | Switch_thread of { tid : tid }

let tid = function
  | Call { tid; _ }
  | Return { tid }
  | Read { tid; _ }
  | Write { tid; _ }
  | Block { tid; _ }
  | User_to_kernel { tid; _ }
  | Kernel_to_user { tid; _ }
  | Acquire { tid; _ }
  | Release { tid; _ }
  | Alloc { tid; _ }
  | Free { tid; _ }
  | Thread_start { tid }
  | Thread_exit { tid }
  | Switch_thread { tid } ->
    tid

let is_switch = function
  | Switch_thread _ -> true
  | Call _ | Return _ | Read _ | Write _ | Block _ | User_to_kernel _
  | Kernel_to_user _ | Acquire _ | Release _ | Alloc _ | Free _
  | Thread_start _ | Thread_exit _ ->
    false

let pp ppf = function
  | Call { tid; routine } -> Format.fprintf ppf "call(t%d, r%d)" tid routine
  | Return { tid } -> Format.fprintf ppf "return(t%d)" tid
  | Read { tid; addr } -> Format.fprintf ppf "read(t%d, %#x)" tid addr
  | Write { tid; addr } -> Format.fprintf ppf "write(t%d, %#x)" tid addr
  | Block { tid; units } -> Format.fprintf ppf "block(t%d, %d)" tid units
  | User_to_kernel { tid; addr; len } ->
    Format.fprintf ppf "userToKernel(t%d, %#x, %d)" tid addr len
  | Kernel_to_user { tid; addr; len } ->
    Format.fprintf ppf "kernelToUser(t%d, %#x, %d)" tid addr len
  | Acquire { tid; lock } -> Format.fprintf ppf "acquire(t%d, l%d)" tid lock
  | Release { tid; lock } -> Format.fprintf ppf "release(t%d, l%d)" tid lock
  | Alloc { tid; addr; len } ->
    Format.fprintf ppf "alloc(t%d, %#x, %d)" tid addr len
  | Free { tid; addr; len } ->
    Format.fprintf ppf "free(t%d, %#x, %d)" tid addr len
  | Thread_start { tid } -> Format.fprintf ppf "threadStart(t%d)" tid
  | Thread_exit { tid } -> Format.fprintf ppf "threadExit(t%d)" tid
  | Switch_thread { tid } -> Format.fprintf ppf "switchThread(t%d)" tid

let to_string e = Format.asprintf "%a" pp e

let to_line = function
  | Call { tid; routine } -> Printf.sprintf "C %d %d" tid routine
  | Return { tid } -> Printf.sprintf "R %d" tid
  | Read { tid; addr } -> Printf.sprintf "L %d %d" tid addr
  | Write { tid; addr } -> Printf.sprintf "S %d %d" tid addr
  | Block { tid; units } -> Printf.sprintf "B %d %d" tid units
  | User_to_kernel { tid; addr; len } -> Printf.sprintf "U %d %d %d" tid addr len
  | Kernel_to_user { tid; addr; len } -> Printf.sprintf "K %d %d %d" tid addr len
  | Acquire { tid; lock } -> Printf.sprintf "A %d %d" tid lock
  | Release { tid; lock } -> Printf.sprintf "E %d %d" tid lock
  | Alloc { tid; addr; len } -> Printf.sprintf "M %d %d %d" tid addr len
  | Free { tid; addr; len } -> Printf.sprintf "F %d %d %d" tid addr len
  | Thread_start { tid } -> Printf.sprintf "T %d" tid
  | Thread_exit { tid } -> Printf.sprintf "X %d" tid
  | Switch_thread { tid } -> Printf.sprintf "W %d" tid

let of_line line =
  let fail () = Error (Printf.sprintf "Event.of_line: malformed %S" line) in
  match String.split_on_char ' ' (String.trim line) with
  | [ "C"; a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some tid, Some routine -> Ok (Call { tid; routine })
    | _ -> fail ())
  | [ "R"; a ] -> (
    match int_of_string_opt a with
    | Some tid -> Ok (Return { tid })
    | None -> fail ())
  | [ "L"; a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some tid, Some addr -> Ok (Read { tid; addr })
    | _ -> fail ())
  | [ "S"; a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some tid, Some addr -> Ok (Write { tid; addr })
    | _ -> fail ())
  | [ "B"; a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some tid, Some units -> Ok (Block { tid; units })
    | _ -> fail ())
  | [ "U"; a; b; c ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
    | Some tid, Some addr, Some len -> Ok (User_to_kernel { tid; addr; len })
    | _ -> fail ())
  | [ "K"; a; b; c ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
    | Some tid, Some addr, Some len -> Ok (Kernel_to_user { tid; addr; len })
    | _ -> fail ())
  | [ "A"; a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some tid, Some lock -> Ok (Acquire { tid; lock })
    | _ -> fail ())
  | [ "E"; a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some tid, Some lock -> Ok (Release { tid; lock })
    | _ -> fail ())
  | [ "M"; a; b; c ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
    | Some tid, Some addr, Some len -> Ok (Alloc { tid; addr; len })
    | _ -> fail ())
  | [ "F"; a; b; c ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
    | Some tid, Some addr, Some len -> Ok (Free { tid; addr; len })
    | _ -> fail ())
  | [ "T"; a ] -> (
    match int_of_string_opt a with
    | Some tid -> Ok (Thread_start { tid })
    | None -> fail ())
  | [ "X"; a ] -> (
    match int_of_string_opt a with
    | Some tid -> Ok (Thread_exit { tid })
    | None -> fail ())
  | [ "W"; a ] -> (
    match int_of_string_opt a with
    | Some tid -> Ok (Switch_thread { tid })
    | None -> fail ())
  | _ -> fail ()

let equal (a : t) (b : t) = a = b
