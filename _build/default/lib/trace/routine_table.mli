(** Interning table mapping routine names to dense integer ids.

    The profilers and tools identify routines by [Event.routine] ids; this
    table owns the id <-> name bijection for one traced program. *)

type t

val create : unit -> t

(** [intern t name] returns the id of [name], allocating a fresh one on
    first use.  Ids are dense, starting at 0, in order of first interning. *)
val intern : t -> string -> Event.routine

(** [name t id] is the name bound to [id].
    @raise Invalid_argument on an unknown id. *)
val name : t -> Event.routine -> string

(** [find t name] is the id of [name] if already interned. *)
val find : t -> string -> Event.routine option

(** [size t] is the number of interned routines. *)
val size : t -> int

(** [iter f t] applies [f id name] to every binding in id order. *)
val iter : (Event.routine -> string -> unit) -> t -> unit
