lib/trace/trace.mli: Aprof_util Event Format
