lib/trace/event.ml: Format Printf String
