lib/trace/trace.ml: Aprof_util Array Event Format Hashtbl In_channel List Option Printf String
