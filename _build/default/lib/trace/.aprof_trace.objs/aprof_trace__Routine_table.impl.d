lib/trace/routine_table.ml: Aprof_util Hashtbl Printf
