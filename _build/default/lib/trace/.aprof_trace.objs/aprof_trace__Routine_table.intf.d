lib/trace/routine_table.mli: Event
