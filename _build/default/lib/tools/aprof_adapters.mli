(** {!Tool} adapters for the input-sensitive profilers of [aprof_core],
    so they line up next to the comparator tools in the Table 1 harness. *)

(** The rms-only baseline profiler (the paper's [aprof] column). *)
val aprof_rms : Tool.factory

(** The full drms profiler (the paper's [aprof-drms] column). *)
val aprof_drms : Tool.factory
