(** A happens-before data race detector in the style of helgrind /
    FastTrack: vector clocks per thread and per synchronization object,
    a last-write epoch and a read clock per memory cell.

    Synchronization events ([Acquire]/[Release] from semaphores,
    barriers, spawn/join edges) transfer clocks through the sync
    object's vector clock with accumulate-join semantics, which is
    conservative (may miss races through over-synchronization) but never
    reports a false race on these traces.

    Kernel transfers are attributed to the issuing thread, as Valgrind
    does for syscall buffers. *)

type race = {
  addr : int;
  kind : [ `Write_write | `Read_write | `Write_read ];
  prev_tid : int;
  tid : int;
}

val pp_race : Format.formatter -> race -> unit

type t

val create : unit -> t
val on_event : t -> Aprof_trace.Event.t -> unit

(** [races t] in detection order, deduplicated per (address, kind). *)
val races : t -> race list

val tool : unit -> Tool.t
val factory : Tool.factory
