module Vec = Aprof_util.Vec

type measurement = {
  tool : string;
  time_s : float;
  slowdown_native : float;
  slowdown_nulgrind : float;
  space_words : int;
  space_overhead : float;
  summary : string;
}

let standard_factories () =
  [
    Nulgrind.factory;
    Memcheck_lite.factory;
    Callgrind_lite.factory;
    Helgrind_lite.factory;
    Aprof_adapters.aprof_rms;
    Aprof_adapters.aprof_drms;
  ]

(* Mean CPU seconds of [f] per call, repeating until [min_time] total. *)
let time_of ~min_time f =
  let runs = ref 0 in
  let start = Sys.time () in
  let elapsed () = Sys.time () -. start in
  while !runs = 0 || elapsed () < min_time do
    f ();
    incr runs
  done;
  elapsed () /. float_of_int !runs

(* A handler-free replay standing in for native execution: forces the
   trace walk without analysis work.  The accumulator escapes through a
   ref so the loop cannot be optimized away. *)
let native_replay trace =
  let acc = ref 0 in
  Vec.iter (fun ev -> acc := !acc + Aprof_trace.Event.tid ev) trace;
  ignore !acc

let measure ?(min_time = 0.05) ~trace ~program_words factories =
  let native_time = time_of ~min_time (fun () -> native_replay trace) in
  let nulgrind_time =
    time_of ~min_time (fun () ->
        let t = Nulgrind.tool () in
        Tool.replay t trace)
  in
  let program_words = max program_words 1 in
  List.map
    (fun f ->
      (* Time fresh instances end to end... *)
      let time_s =
        time_of ~min_time (fun () ->
            let t = f.Tool.create () in
            Tool.replay t trace)
      in
      (* ...and keep one instance for space and summary. *)
      let t = f.Tool.create () in
      Tool.replay t trace;
      let space_words = t.Tool.space_words () in
      {
        tool = t.Tool.name;
        time_s;
        slowdown_native = time_s /. Float.max native_time 1e-9;
        slowdown_nulgrind = time_s /. Float.max nulgrind_time 1e-9;
        space_words;
        space_overhead =
          float_of_int (program_words + space_words)
          /. float_of_int program_words;
        summary = t.Tool.summary ();
      })
    factories

let geometric_rows per_benchmark =
  match per_benchmark with
  | [] -> []
  | first :: _ ->
    List.map
      (fun (m0 : measurement) ->
        let same =
          List.filter_map
            (fun ms ->
              List.find_opt (fun (m : measurement) -> m.tool = m0.tool) ms)
            per_benchmark
        in
        let geo f = Aprof_util.Stats.geometric_mean (List.map f same) in
        ( m0.tool,
          geo (fun m -> m.slowdown_native),
          geo (fun m -> m.slowdown_nulgrind),
          geo (fun m -> m.space_overhead) ))
      first

let pp_measurement ppf m =
  Format.fprintf ppf
    "%-10s time=%.4fs slowdown(native)=%.1fx slowdown(nulgrind)=%.1fx \
     space=%d words (%.2fx)"
    m.tool m.time_s m.slowdown_native m.slowdown_nulgrind m.space_words
    m.space_overhead
