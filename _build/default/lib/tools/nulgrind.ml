type t = { mutable events : int }

let create () = { events = 0 }

let on_event t _ = t.events <- t.events + 1

let events t = t.events

let tool () =
  let t = create () in
  {
    Tool.name = "nulgrind";
    on_event = on_event t;
    space_words = (fun () -> 1);
    summary = (fun () -> Printf.sprintf "nulgrind: %d events replayed" t.events);
  }

let factory = { Tool.tool_name = "nulgrind"; create = tool }
