type t = {
  name : string;
  on_event : Aprof_trace.Event.t -> unit;
  space_words : unit -> int;
  summary : unit -> string;
}

type factory = { tool_name : string; create : unit -> t }

let replay tool trace = Aprof_util.Vec.iter tool.on_event trace
