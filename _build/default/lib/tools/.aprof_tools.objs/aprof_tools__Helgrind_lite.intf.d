lib/tools/helgrind_lite.mli: Aprof_trace Format Tool
