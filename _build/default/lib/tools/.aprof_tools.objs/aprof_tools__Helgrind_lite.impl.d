lib/tools/helgrind_lite.ml: Aprof_trace Format Hashtbl List Printf Tool Vclock
