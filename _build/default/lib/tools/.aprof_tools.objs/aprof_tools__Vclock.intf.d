lib/tools/vclock.mli: Format
