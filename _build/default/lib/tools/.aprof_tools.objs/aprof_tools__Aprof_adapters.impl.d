lib/tools/aprof_adapters.ml: Aprof_core List Printf Tool
