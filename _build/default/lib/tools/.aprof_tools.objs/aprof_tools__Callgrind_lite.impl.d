lib/tools/callgrind_lite.ml: Aprof_core Aprof_trace Aprof_util Hashtbl List Printf Tool
