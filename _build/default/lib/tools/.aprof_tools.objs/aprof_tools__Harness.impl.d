lib/tools/harness.ml: Aprof_adapters Aprof_trace Aprof_util Callgrind_lite Float Format Helgrind_lite List Memcheck_lite Nulgrind Sys Tool
