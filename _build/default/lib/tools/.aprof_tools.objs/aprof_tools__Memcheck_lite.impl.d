lib/tools/memcheck_lite.ml: Aprof_shadow Aprof_trace Format Hashtbl List Printf Tool
