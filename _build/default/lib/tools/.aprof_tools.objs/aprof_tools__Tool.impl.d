lib/tools/tool.ml: Aprof_trace Aprof_util
