lib/tools/vclock.ml: Array Format String
