lib/tools/callgrind_lite.mli: Aprof_trace Tool
