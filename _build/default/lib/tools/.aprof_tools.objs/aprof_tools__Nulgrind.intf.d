lib/tools/nulgrind.mli: Aprof_trace Tool
