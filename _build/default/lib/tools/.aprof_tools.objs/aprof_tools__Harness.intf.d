lib/tools/harness.mli: Aprof_trace Format Tool
