lib/tools/aprof_adapters.mli: Tool
