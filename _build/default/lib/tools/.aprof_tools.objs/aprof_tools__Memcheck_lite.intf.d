lib/tools/memcheck_lite.mli: Aprof_trace Format Tool
