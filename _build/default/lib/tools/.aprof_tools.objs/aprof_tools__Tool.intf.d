lib/tools/tool.mli: Aprof_trace
