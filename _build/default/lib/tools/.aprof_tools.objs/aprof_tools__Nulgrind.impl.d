lib/tools/nulgrind.ml: Printf Tool
