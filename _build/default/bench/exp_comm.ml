(* Communication characterization (the paper's future-work direction and
   its reference [12], Kalibera et al.): how much do the benchmarks
   really interact through shared memory, and through how many distinct
   producer/consumer pairs?  The cited observation — "even widespread
   multi-threaded benchmarks do not interact much or interact only in
   limited ways" — shows up here as a high share of single-pair cells. *)

module Comm = Aprof_core.Comm_profiler

let run ppf =
  Exp_common.section ppf
    "comm: shared-memory communication at routine granularity";
  Format.fprintf ppf "  %-14s %10s %10s %12s %14s@." "benchmark" "values"
    "cells" "single-pair" "thread edges";
  List.iter
    (fun name ->
      let r = Exp_common.run_named name in
      let c = Comm.create () in
      Comm.run c r.Exp_common.result.Aprof_vm.Interp.trace;
      let report = Comm.report c in
      Format.fprintf ppf "  %-14s %10d %10d %11.0f%% %14d@." name
        report.Comm.total_values report.Comm.communicating_cells
        (if report.Comm.communicating_cells = 0 then 0.
         else
           100.
           *. float_of_int report.Comm.single_pair_cells
           /. float_of_int report.Comm.communicating_cells)
        (List.length report.Comm.thread_matrix))
    [
      "producer_consumer"; "vips"; "dedup"; "fluidanimate"; "bodytrack";
      "canneal"; "nab"; "smithwa"; "mysqlslap";
    ];
  (* the headline routine-level view on vips *)
  let vips = Exp_common.run_named ~scale:60 "vips" in
  let c = Comm.create () in
  Comm.run c vips.Exp_common.result.Aprof_vm.Interp.trace;
  let tbl = vips.Exp_common.result.Aprof_vm.Interp.routines in
  let report = Comm.report c in
  let top = List.filteri (fun i _ -> i < 8) report.Comm.routine_matrix in
  Format.fprintf ppf "  top vips producer -> consumer routine edges:@.";
  List.iter
    (fun e ->
      let name = function
        | -2 -> "<kernel>"
        | -1 -> "<toplevel>"
        | id -> Aprof_trace.Routine_table.name tbl id
      in
      Format.fprintf ppf "    %22s -> %-22s %8d@." (name e.Comm.from_id)
        (name e.Comm.to_id) e.Comm.values)
    top
