(* Figure 1: the two worked interleaving examples — the profiler's
   outputs are checked against the values stated in the paper. *)

module Profile = Aprof_core.Profile

let run_micro trace =
  let p = Aprof_core.Drms_profiler.create () in
  Aprof_core.Drms_profiler.run p trace;
  Aprof_core.Drms_profiler.finish p

let values profile ~tid ~routine =
  match Profile.data profile { Profile.tid; routine } with
  | None -> (0, 0)
  | Some d ->
    ( int_of_float d.Profile.sum_rms,
      int_of_float d.Profile.sum_drms )

let run ppf =
  Exp_common.section ppf "fig1: dynamic read memory size examples";
  let trace_a, tbl_a = Aprof_workloads.Micro.fig1a () in
  let pa = run_micro trace_a in
  let f = Option.get (Aprof_trace.Routine_table.find tbl_a "f") in
  let rms_f, drms_f = values pa ~tid:0 ~routine:f in
  Format.fprintf ppf
    "  fig1a: rms(f) = %d (paper: 1), drms(f) = %d (paper: 2)@." rms_f drms_f;
  let trace_b, tbl_b = Aprof_workloads.Micro.fig1b () in
  let pb = run_micro trace_b in
  let fb = Option.get (Aprof_trace.Routine_table.find tbl_b "f") in
  let hb = Option.get (Aprof_trace.Routine_table.find tbl_b "h") in
  let rms_f, drms_f = values pb ~tid:0 ~routine:fb in
  let rms_h, drms_h = values pb ~tid:0 ~routine:hb in
  Format.fprintf ppf
    "  fig1b: rms(f) = %d (1), drms(f) = %d (2); rms(h) = %d (1), drms(h) = %d (1)@."
    rms_f drms_f rms_h drms_h
