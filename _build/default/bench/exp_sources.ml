(* Figure 14: thread and external input over total first-reads, as
   per-routine tail curves. *)

let run ppf =
  Exp_common.section ppf "fig14: thread and external input on a routine basis";
  let runs = List.map (fun n -> (n, Exp_common.run_named n)) Exp_common.fig14_set in
  Exp_common.curve_table ppf ~title:"  %% thread input at top x% of routines"
    (List.map
       (fun (n, r) ->
         (n, Aprof_core.Metrics.thread_input_curve r.Exp_common.profile))
       runs);
  Exp_common.curve_table ppf ~title:"  %% external input at top x% of routines"
    (List.map
       (fun (n, r) ->
         (n, Aprof_core.Metrics.external_input_curve r.Exp_common.profile))
       runs)
