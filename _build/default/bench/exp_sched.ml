(* Scheduler sensitivity (Section 4.2, "Dynamic Workload
   Characterization"): re-run benchmarks under different scheduling
   configurations; external input should stay stable while thread input
   fluctuates only mildly. *)

module Scheduler = Aprof_vm.Scheduler
module Metrics = Aprof_core.Metrics

let schedulers =
  [
    ("rr-64", Scheduler.Round_robin { slice = 64 });
    ("rr-16", Scheduler.Round_robin { slice = 16 });
    ("rr-256", Scheduler.Round_robin { slice = 256 });
    ("serialized", Scheduler.Serialized);
    ("random-a", Scheduler.Random_preemptive { min_slice = 8; max_slice = 128 });
    ("random-b", Scheduler.Random_preemptive { min_slice = 32; max_slice = 64 });
  ]

let shares run_data =
  match Metrics.suite_characterization run_data.Exp_common.profile with
  | Some (t, e) -> (t, e)
  | None -> (0., 0.)

let external_ops profile =
  List.fold_left
    (fun acc (_, d) -> acc + d.Aprof_core.Profile.induced_external_ops)
    0
    (Aprof_core.Profile.merge_threads profile)

let run ppf =
  Exp_common.section ppf
    "sched: thread/external input stability across scheduler configurations";
  let names = [ "vips"; "dedup"; "fluidanimate"; "nab"; "smithwa"; "bodytrack" ] in
  Format.fprintf ppf "  %-14s %10s %12s %14s %14s@." "benchmark" "thread%"
    "fluctuation" "ext ops (min)" "ext ops (max)";
  List.iter
    (fun name ->
      let runs =
        List.map
          (fun (_, sched) -> Exp_common.run_named ~scheduler:sched name)
          schedulers
      in
      let thread_shares = List.map (fun r -> fst (shares r)) runs in
      let ext_counts =
        List.map (fun r -> external_ops r.Exp_common.profile) runs
      in
      let mean = Aprof_util.Stats.mean thread_shares in
      let fluct =
        if mean <= 0. then 0.
        else
          100.
          *. (List.fold_left Float.max neg_infinity thread_shares
              -. List.fold_left Float.min infinity thread_shares)
          /. mean
      in
      Format.fprintf ppf "  %-14s %9.1f%% %11.1f%% %14d %14d@." name mean fluct
        (List.fold_left min max_int ext_counts)
        (List.fold_left max 0 ext_counts))
    names;
  Format.fprintf ppf
    "  (paper: external input is stable across runs; thread input fluctuates \
     by ~2%% on average with rare large peaks)@."
