(* Figure 12: dynamic input volume — per-routine tail curves of
   1 - (sum rms)/(sum drms), scaled to [0,100]. *)

let run ppf =
  Exp_common.section ppf "fig12: dynamic input volume of drms w.r.t. rms";
  let names = Exp_common.fig11_set_a @ Exp_common.fig11_set_b in
  let curves =
    List.map
      (fun name ->
        let r = Exp_common.run_named name in
        (name, Aprof_core.Metrics.input_volume_curve r.Exp_common.profile))
      names
  in
  Exp_common.curve_table ppf
    ~title:"  input volume x 100 at top x% of routines" curves;
  Format.fprintf ppf
    "  (paper: curves fall steeply from 100 to 0, reaching the floor around \
     x = 8%%: few routines encapsulate all thread/IO input)@.";
  List.iter
    (fun name ->
      let r = Exp_common.run_named name in
      Format.fprintf ppf "  whole-run input volume %-14s = %.3f@." name
        (Aprof_core.Metrics.dynamic_input_volume r.Exp_common.profile))
    names
