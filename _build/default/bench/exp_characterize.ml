(* Figure 15: whole-benchmark characterization of induced first-reads:
   one stacked 100% bar per benchmark, sorted by decreasing thread
   share.  The paper's headline: the OMP2012 kernels cluster at thread
   input >= 69%. *)

module Workload = Aprof_workloads.Workload

let run ppf =
  Exp_common.section ppf "fig15: characterization of induced first-reads";
  let names =
    Exp_common.omp_suite () @ Exp_common.parsec_suite ()
    @ [ "mysqlslap"; "producer_consumer"; "stream_reader" ]
  in
  let rows =
    List.filter_map
      (fun name ->
        let r = Exp_common.run_named name in
        match Aprof_core.Metrics.suite_characterization r.Exp_common.profile with
        | None -> None
        | Some (t, e) -> Some (name, t, e))
      names
    |> List.sort (fun (_, t1, _) (_, t2, _) -> compare t2 t1)
  in
  Format.fprintf ppf "%s@."
    (Aprof_plot.Ascii_plot.histogram
       ~title:"  induced first-reads: thread vs external (100% bars)"
       ~rows:
         (List.map
            (fun (n, t, e) -> (n, [ ("thread", t); ("external", e) ]))
            rows));
  let omp = Exp_common.omp_suite () in
  let omp_min_thread =
    List.fold_left
      (fun acc (n, t, _) -> if List.mem n omp then Float.min acc t else acc)
      100. rows
  in
  Format.fprintf ppf
    "  minimum thread share across OMP kernels: %.0f%% (paper: all OMP2012 \
     benchmarks have thread input > 69%%)@."
    omp_min_thread
