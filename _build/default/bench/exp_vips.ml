(* Figures 5 and 6: the vips pipeline.

   fig5 — im_generate cost plots keyed by rms and drms: only the drms
   exposes the linear relation between image size and cost.

   fig6 — wbuffer_write_thread: (a) the rms collapses all calls onto two
   input sizes; (b) counting only external induced first-reads separates
   more; (c) the full drms separates almost every call. *)

module Plot = Aprof_plot.Ascii_plot
module Metrics = Aprof_core.Metrics

let profile_with mode trace =
  let p = Aprof_core.Drms_profiler.create ~mode () in
  Aprof_core.Drms_profiler.run p trace;
  Aprof_core.Drms_profiler.finish p

let run ppf =
  Exp_common.section ppf "fig5: im_generate cost plots (rms vs drms)";
  let heights = Aprof_workloads.Vips_sim.default_heights in
  let result =
    Aprof_workloads.Workload.run
      (Aprof_workloads.Vips_sim.pipeline ~workers:3 ~heights ~seed:11)
      ~seed:11
  in
  let trace = result.Aprof_vm.Interp.trace in
  let run_data =
    { Exp_common.name = "vips"; result; profile = profile_with `Both trace }
  in
  let d = Exp_common.merged run_data "im_generate" in
  let plot title metric points =
    let chart =
      Plot.create ~title ~x_label:metric ~y_label:"cost (executed BB)" ()
    in
    Plot.add_series chart ~name:"worst-case cost" ~marker:'*' points;
    Format.fprintf ppf "%s@." (Plot.render_string chart)
  in
  plot "Cost plot (im_generate) vs RMS" "RMS"
    (Exp_common.cost_points ~metric:`Rms d);
  plot "Cost plot (im_generate) vs DRMS" "DRMS"
    (Exp_common.cost_points ~metric:`Drms d);
  Exp_common.fit_note ppf ~label:"im_generate cost vs drms"
    (Exp_common.cost_points ~metric:`Drms d);

  Exp_common.section ppf "fig6: wbuffer_write_thread input-size separation";
  let count mode metric =
    let profile = profile_with mode trace in
    let data =
      List.assoc
        (Exp_common.routine_id run_data "wbuffer_write_thread")
        (Aprof_core.Profile.merge_threads profile)
    in
    (Metrics.distinct_points ~metric data, data)
  in
  let n_rms, d_full = count `Both `Rms in
  let n_ext, _ = count `External_only `Drms in
  let n_full, _ = count `Both `Drms in
  let calls = d_full.Aprof_core.Profile.activations in
  Format.fprintf ppf
    "  %d calls -> distinct input sizes: rms = %d, drms(external only) = %d, \
     drms(external+thread) = %d@."
    calls n_rms n_ext n_full;
  Format.fprintf ppf
    "  (paper: 110 calls collapse to 2 rms values; the full drms separates \
     all 110)@.";
  let chart =
    Plot.create ~title:"Cost plot (wbuffer_write_thread) vs DRMS"
      ~x_label:"DRMS" ~y_label:"cost (executed BB)" ()
  in
  Plot.add_series chart ~name:"worst-case cost" ~marker:'*'
    (Exp_common.cost_points ~metric:`Drms d_full);
  Format.fprintf ppf "%s@." (Plot.render_string chart)
