bench/exp_volume.ml: Aprof_core Exp_common Format List
