bench/exp_ablation.ml: Aprof_core Aprof_util Aprof_vm Aprof_workloads Exp_common Format List Option Sys
