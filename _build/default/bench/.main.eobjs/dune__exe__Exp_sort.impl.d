bench/exp_sort.ml: Aprof_core Aprof_plot Aprof_util Aprof_vm Aprof_workloads Exp_common Format List
