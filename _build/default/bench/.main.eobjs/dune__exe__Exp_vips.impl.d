bench/exp_vips.ml: Aprof_core Aprof_plot Aprof_vm Aprof_workloads Exp_common Format List
