bench/main.mli:
