bench/exp_scaling.ml: Aprof_tools Aprof_vm Exp_common Exp_table1 Format List Printf
