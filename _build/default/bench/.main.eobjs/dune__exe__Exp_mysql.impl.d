bench/exp_mysql.ml: Aprof_core Aprof_plot Aprof_vm Aprof_workloads Exp_common Float Format List Printf
