bench/exp_common.ml: Aprof_core Aprof_plot Aprof_trace Aprof_vm Aprof_workloads Format List Printf
