bench/exp_richness.ml: Aprof_core Exp_common Format List
