bench/exp_sched.ml: Aprof_core Aprof_util Aprof_vm Exp_common Float Format List
