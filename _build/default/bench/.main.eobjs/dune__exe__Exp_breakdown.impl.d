bench/exp_breakdown.ml: Aprof_core Aprof_plot Aprof_trace Aprof_vm Exp_common Format List Printf
