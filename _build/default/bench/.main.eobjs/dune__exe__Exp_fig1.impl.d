bench/exp_fig1.ml: Aprof_core Aprof_trace Aprof_workloads Exp_common Format Option
