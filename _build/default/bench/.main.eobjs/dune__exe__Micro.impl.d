bench/micro.ml: Analyze Aprof_core Aprof_tools Aprof_util Aprof_vm Aprof_workloads Bechamel Benchmark Exp_common Format Hashtbl Instance List Measure Option Staged Test Time Toolkit
