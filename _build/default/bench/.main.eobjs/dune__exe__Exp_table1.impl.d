bench/exp_table1.ml: Aprof_tools Aprof_util Aprof_vm Aprof_workloads Exp_common Format List
