bench/exp_comm.ml: Aprof_core Aprof_trace Aprof_vm Exp_common Format List
