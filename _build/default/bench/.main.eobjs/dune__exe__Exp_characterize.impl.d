bench/exp_characterize.ml: Aprof_core Aprof_plot Aprof_workloads Exp_common Float Format List
