bench/exp_patterns.ml: Aprof_core Aprof_vm Aprof_workloads Exp_common Format List
