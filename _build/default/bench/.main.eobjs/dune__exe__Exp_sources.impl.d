bench/exp_sources.ml: Aprof_core Exp_common List
