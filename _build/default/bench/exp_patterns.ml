(* Figures 2 and 3: producer-consumer and stream-reader patterns.  The
   drms of the consuming routine must track n while its rms stays 1. *)

module Profile = Aprof_core.Profile

let consumer_values run rname =
  let d = Exp_common.merged run rname in
  ( int_of_float d.Profile.sum_rms,
    int_of_float d.Profile.sum_drms )

let run ppf =
  Exp_common.section ppf "fig2/3: producer-consumer and data streaming";
  Format.fprintf ppf "  %-8s %-22s %-22s@." "n" "producer-consumer" "stream reader";
  Format.fprintf ppf "  %-8s %10s %10s %10s %10s@." "" "rms" "drms" "rms" "drms";
  List.iter
    (fun n ->
      let pc =
        {
          Exp_common.name = "producer_consumer";
          result =
            Aprof_workloads.Workload.run
              (Aprof_workloads.Patterns.producer_consumer ~n)
              ~seed:7;
          profile = Profile.create ();
        }
      in
      let pc =
        let p = Aprof_core.Drms_profiler.create () in
        Aprof_core.Drms_profiler.run p pc.Exp_common.result.Aprof_vm.Interp.trace;
        { pc with Exp_common.profile = Aprof_core.Drms_profiler.finish p }
      in
      let sr =
        let result =
          Aprof_workloads.Workload.run
            (Aprof_workloads.Patterns.stream_reader ~n)
            ~seed:7
        in
        let p = Aprof_core.Drms_profiler.create () in
        Aprof_core.Drms_profiler.run p result.Aprof_vm.Interp.trace;
        {
          Exp_common.name = "stream_reader";
          result;
          profile = Aprof_core.Drms_profiler.finish p;
        }
      in
      let pc_rms, pc_drms = consumer_values pc "consumer" in
      let sr_rms, sr_drms = consumer_values sr "streamReader" in
      Format.fprintf ppf "  %-8d %10d %10d %10d %10d@." n pc_rms pc_drms sr_rms
        sr_drms)
    [ 10; 50; 100; 500; 1000 ];
  Format.fprintf ppf
    "  (paper: rms stays 1 per routine while drms equals n in both patterns)@."
