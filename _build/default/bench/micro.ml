(* Bechamel microbenchmarks: per-event cost of each analysis on a fixed
   prepared trace — one Test per table/figure family, quantifying the
   machinery behind that experiment (e.g. the ~29% drms-over-rms handler
   overhead reported next to Table 1). *)

open Bechamel
open Toolkit

let prepared_trace () =
  let r =
    Aprof_workloads.Workload.run_spec
      (Option.get (Aprof_workloads.Registry.find "dedup"))
      ~threads:4 ~scale:120 ~seed:9
  in
  r.Aprof_vm.Interp.trace

let mysql_trace () =
  let r =
    Aprof_workloads.Workload.run
      (Aprof_workloads.Mysql_sim.select_sweep ~row_counts:[ 100; 200; 300 ]
         ~seed:3)
      ~seed:3
  in
  r.Aprof_vm.Interp.trace

let replay_with create trace () =
  let tool = create () in
  Aprof_util.Vec.iter tool.Aprof_tools.Tool.on_event trace

let tests () =
  let trace = prepared_trace () in
  let mtrace = mysql_trace () in
  [
    (* table1: each tool's replay cost on one pipeline trace *)
    Test.make ~name:"table1/nulgrind"
      (Staged.stage (replay_with Aprof_tools.Nulgrind.tool trace));
    Test.make ~name:"table1/memcheck"
      (Staged.stage (replay_with Aprof_tools.Memcheck_lite.tool trace));
    Test.make ~name:"table1/callgrind"
      (Staged.stage (replay_with Aprof_tools.Callgrind_lite.tool trace));
    Test.make ~name:"table1/helgrind"
      (Staged.stage (replay_with Aprof_tools.Helgrind_lite.tool trace));
    Test.make ~name:"table1/aprof-rms"
      (Staged.stage (fun () ->
           let p = Aprof_core.Rms_profiler.create () in
           Aprof_core.Rms_profiler.run p trace));
    Test.make ~name:"table1/aprof-drms"
      (Staged.stage (fun () ->
           let p = Aprof_core.Drms_profiler.create () in
           Aprof_core.Drms_profiler.run p trace));
    (* fig4-6: profiling the buffered-scan trace that generates the cost
       plots *)
    Test.make ~name:"fig4/drms-mysql-scan"
      (Staged.stage (fun () ->
           let p = Aprof_core.Drms_profiler.create () in
           Aprof_core.Drms_profiler.run p mtrace));
    (* fig11-15: the metrics pass over a finished profile *)
    Test.make ~name:"fig11-15/metrics"
      (Staged.stage
         (let p = Aprof_core.Drms_profiler.create () in
          Aprof_core.Drms_profiler.run p trace;
          let profile = Aprof_core.Drms_profiler.finish p in
          fun () ->
            ignore (Aprof_core.Metrics.richness_curve profile);
            ignore (Aprof_core.Metrics.input_volume_curve profile);
            ignore (Aprof_core.Metrics.suite_characterization profile)));
    (* fig16: trace generation itself (the VM), which scales with threads *)
    Test.make ~name:"fig16/vm-run-4thr"
      (Staged.stage (fun () ->
           ignore
             (Aprof_workloads.Workload.run_spec
                (Option.get (Aprof_workloads.Registry.find "md"))
                ~threads:4 ~scale:120 ~seed:9)));
  ]

let run ppf =
  Exp_common.section ppf "bechamel microbenchmarks (one per table/figure family)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~kde:None () in
  let raw =
    List.map
      (fun test -> Benchmark.all cfg instances test)
      (tests ())
  in
  let results =
    List.map (fun r -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true
                                      ~predictors:[| Measure.run |]) Instance.monotonic_clock r)
      raw
  in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
            Format.fprintf ppf "  %-24s %12.0f ns/run@." name est
          | _ -> Format.fprintf ppf "  %-24s (no estimate)@." name)
        tbl)
    results
