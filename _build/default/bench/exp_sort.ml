(* Figure 10: selection sort profiled by executed basic blocks versus a
   noisy simulated-time measurement.  Both expose the quadratic trend,
   but the basic-block plot is clean while the time plot scatters. *)

module Plot = Aprof_plot.Ascii_plot
module Profile = Aprof_core.Profile

let sizes = [ 40; 80; 120; 160; 200; 240; 280; 320 ]

let run ppf =
  Exp_common.section ppf "fig10: counting basic blocks vs measuring time";
  let rng = Aprof_util.Rng.create 99 in
  let points =
    List.map
      (fun n ->
        let result =
          Aprof_workloads.Workload.run
            (Aprof_workloads.Sorting.selection_sort_run ~n ~seed:5)
            ~seed:5
        in
        let p = Aprof_core.Drms_profiler.create () in
        Aprof_core.Drms_profiler.run p result.Aprof_vm.Interp.trace;
        let profile = Aprof_core.Drms_profiler.finish p in
        let run_data = { Exp_common.name = "sort"; result; profile } in
        let d = Exp_common.merged run_data "selection_sort" in
        match d.Profile.drms_points with
        | [ pt ] ->
          let bb = pt.Profile.max_cost in
          let ns =
            Aprof_core.Cost_model.simulated_time_ns rng ~ns_per_block:2.5
              ~jitter:0.18 bb
          in
          (float_of_int pt.Profile.input, float_of_int bb, ns)
        | _ -> failwith "expected one selection_sort activation")
      sizes
  in
  let bb_chart =
    Plot.create ~title:"Cost plot (selection_sort), executed BB"
      ~x_label:"read memory size" ~y_label:"cost (executed BB)" ()
  in
  Plot.add_series bb_chart ~name:"BB" ~marker:'*'
    (List.map (fun (n, bb, _) -> (n, bb)) points);
  Format.fprintf ppf "%s@." (Plot.render_string bb_chart);
  let ns_chart =
    Plot.create ~title:"Cost plot (selection_sort), simulated nanoseconds"
      ~x_label:"read memory size" ~y_label:"cost (ns)" ()
  in
  Plot.add_series ns_chart ~name:"ns" ~marker:'o'
    (List.map (fun (n, _, ns) -> (n, ns)) points);
  Format.fprintf ppf "%s@." (Plot.render_string ns_chart);
  Exp_common.fit_note ppf ~label:"BB cost vs input"
    (List.map (fun (n, bb, _) -> (n, bb)) points);
  (match
     Aprof_core.Fit.power_law
       (List.map (fun (n, bb, _) -> (int_of_float n, bb)) points)
   with
  | Some (_, k, r2) ->
    Format.fprintf ppf "  power-law exponent on BB: %.2f (R^2 = %.4f, paper trend: 2)@." k r2
  | None -> ());
  match
    Aprof_core.Fit.power_law
      (List.map (fun (n, _, ns) -> (int_of_float n, ns)) points)
  with
  | Some (_, k, r2) ->
    Format.fprintf ppf "  power-law exponent on noisy ns: %.2f (R^2 = %.4f)@." k r2
  | None -> ()
