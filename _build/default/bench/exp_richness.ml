(* Figure 11: routine profile richness — for each benchmark, the tail
   curve "x% of routines have (|drms|-|rms|)/|rms| >= y". *)

let run ppf =
  Exp_common.section ppf "fig11: routine profile richness of drms w.r.t. rms";
  let curves =
    List.map
      (fun name ->
        let r = Exp_common.run_named name in
        (name, Aprof_core.Metrics.richness_curve r.Exp_common.profile))
      (Exp_common.fig11_set_a @ Exp_common.fig11_set_b)
  in
  Exp_common.curve_table ppf
    ~title:"  profile richness at top x% of routines (y = richness value)"
    curves;
  Format.fprintf ppf
    "  (paper: a small fraction of routines reaches very high richness — \
     dedup up to ~10^6 — and almost none is negative)@.";
  let negatives =
    List.concat_map
      (fun name ->
        let r = Exp_common.run_named name in
        Aprof_core.Profile.merge_threads r.Exp_common.profile
        |> List.filter_map (fun (_, d) ->
               let rich = Aprof_core.Metrics.profile_richness d in
               if rich < 0. then Some rich else None))
      Exp_common.fig11_set_a
  in
  Format.fprintf ppf "  routines with negative richness across set A: %d@."
    (List.length negatives)
