(* Table 1: slowdown and space overhead of aprof-drms against nulgrind,
   memcheck, callgrind, helgrind and plain aprof, aggregated by
   geometric mean over the PARSEC and OMP suites. *)

module Harness = Aprof_tools.Harness
module Workload = Aprof_workloads.Workload

(* Grow the scale until the trace is large enough that per-event handler
   cost (not tool construction) dominates the timing. *)
let rec sized_run ~threads ~scale ~min_events name =
  let r = Exp_common.run_named ~threads ~scale name in
  if
    Aprof_util.Vec.length r.Exp_common.result.Aprof_vm.Interp.trace
    >= min_events
    || scale > 64 * min_events
  then r
  else sized_run ~threads ~scale:(scale * 2) ~min_events name

let measure_suite ?(threads = 4) ?(scale = 300) ?(min_events = 40_000) names =
  List.map
    (fun name ->
      let r = sized_run ~threads ~scale ~min_events name in
      Harness.measure
        ~trace:r.Exp_common.result.Aprof_vm.Interp.trace
        ~program_words:r.Exp_common.result.Aprof_vm.Interp.memory_high_water
        (Harness.standard_factories ()))
    names

let print_rows ppf suite rows =
  Format.fprintf ppf "  %s:@." suite;
  Format.fprintf ppf "    %-10s %18s %20s %16s@." "tool" "slowdown(native)"
    "slowdown(nulgrind)" "space overhead";
  List.iter
    (fun (tool, native, nul, space) ->
      Format.fprintf ppf "    %-10s %17.1fx %19.2fx %15.2fx@." tool native nul
        space)
    rows

let run ?(quick = false) ppf =
  Exp_common.section ppf
    "table1: performance comparison with aprof and Valgrind tools (geom. means)";
  let scale = if quick then 150 else 300 in
  let min_events = if quick then 15_000 else 30_000 in
  let parsec = measure_suite ~scale ~min_events (Exp_common.parsec_suite ()) in
  let omp = measure_suite ~scale ~min_events (Exp_common.omp_suite ()) in
  print_rows ppf "PARSEC 2.1 (miniatures)" (Harness.geometric_rows parsec);
  print_rows ppf "SPEC OMP2012 (miniatures)" (Harness.geometric_rows omp);
  Format.fprintf ppf
    "  (paper shape: nulgrind fastest; memcheck/callgrind midfield; aprof-drms \
     ~1.3x aprof; helgrind slowest and most space-hungry of the \
     concurrency-aware tools)@."
