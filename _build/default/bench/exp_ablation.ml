(* Ablations of the design choices DESIGN.md calls out:

   1. the O(log depth) binary search on the shadow stack (line 7 of
      Figure 8) versus the naive linear walk, measured on a deeply
      recursive workload where it matters;
   2. the periodic timestamp renumbering: handler cost as the overflow
      threshold shrinks (the paper's mitigation must stay affordable);
   3. the two extra global-shadow accesses the drms pays over the rms
      (the ~29%-class overhead Table 1 quantifies end to end). *)

module Drms = Aprof_core.Drms_profiler

let time_replay make trace =
  let t0 = Sys.time () in
  let runs = ref 0 in
  while Sys.time () -. t0 < 0.4 do
    let p = make () in
    Drms.run p trace;
    incr runs
  done;
  (Sys.time () -. t0) /. float_of_int !runs

let deep_trace () =
  (* merge sort has Theta(log n) live ancestors per access *)
  let r =
    Aprof_workloads.Workload.run
      (Aprof_workloads.Sorting.merge_sort_run ~n:4000 ~seed:3)
      ~seed:3
  in
  r.Aprof_vm.Interp.trace

let mixed_trace () =
  let r =
    Aprof_workloads.Workload.run_spec
      (Option.get (Aprof_workloads.Registry.find "dedup"))
      ~threads:4 ~scale:300 ~seed:3
  in
  r.Aprof_vm.Interp.trace

let run ppf =
  Exp_common.section ppf "ablation: drms design choices";
  let deep = deep_trace () in
  let t_bin = time_replay (fun () -> Drms.create ()) deep in
  let t_lin = time_replay (fun () -> Drms.create ~ancestor_search:`Linear ()) deep in
  Format.fprintf ppf
    "  ancestor search on deep recursion (merge sort, %d events):@."
    (Aprof_util.Vec.length deep);
  Format.fprintf ppf "    binary search: %.4f s/replay@." t_bin;
  Format.fprintf ppf "    linear walk:   %.4f s/replay (%.2fx)@." t_lin
    (t_lin /. t_bin);

  let mixed = mixed_trace () in
  Format.fprintf ppf "  renumbering threshold (dedup, %d events):@."
    (Aprof_util.Vec.length mixed);
  List.iter
    (fun limit ->
      let t = time_replay (fun () -> Drms.create ~overflow_limit:limit ()) mixed in
      let p = Drms.create ~overflow_limit:limit () in
      Drms.run p mixed;
      Format.fprintf ppf
        "    overflow_limit=%-9d %.4f s/replay (%d renumberings)@." limit t
        (Drms.renumber_count p))
    [ max_int - 1; 100_000; 10_000; 1_000 ];

  let t_full = time_replay (fun () -> Drms.create ()) mixed in
  let t_rms =
    let t0 = Sys.time () in
    let runs = ref 0 in
    while Sys.time () -. t0 < 0.4 do
      let p = Aprof_core.Rms_profiler.create () in
      Aprof_core.Rms_profiler.run p mixed;
      incr runs
    done;
    (Sys.time () -. t0) /. float_of_int !runs
  in
  Format.fprintf ppf
    "  recognizing induced first-reads (aprof-drms vs plain aprof) on dedup:@.";
  Format.fprintf ppf "    aprof-drms: %.4f s/replay@." t_full;
  Format.fprintf ppf
    "    aprof:      %.4f s/replay (drms costs %.0f%% more; paper: ~29%%)@."
    t_rms
    (100. *. ((t_full /. t_rms) -. 1.))
