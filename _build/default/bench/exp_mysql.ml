(* Figure 4: worst-case cost plots of mysql_select keyed by rms and by
   drms.  The rms plot must collapse onto a narrow input range with
   growing cost (a spurious superlinear look), while the drms plot must
   be cleanly linear. *)

module Plot = Aprof_plot.Ascii_plot

let row_counts = [ 100; 200; 300; 400; 500; 600; 700; 800 ]

let run ppf =
  Exp_common.section ppf "fig4: mysql_select cost plots (rms vs drms)";
  let result =
    Aprof_workloads.Workload.run
      (Aprof_workloads.Mysql_sim.select_sweep ~row_counts ~seed:3)
      ~seed:3
  in
  let p = Aprof_core.Drms_profiler.create () in
  Aprof_core.Drms_profiler.run p result.Aprof_vm.Interp.trace;
  let run_data =
    {
      Exp_common.name = "mysql";
      result;
      profile = Aprof_core.Drms_profiler.finish p;
    }
  in
  let d = Exp_common.merged run_data "mysql_select" in
  let rms_points = Exp_common.cost_points ~metric:`Rms d in
  let drms_points = Exp_common.cost_points ~metric:`Drms d in
  let plot metric points =
    let chart =
      Plot.create
        ~title:(Printf.sprintf "Cost plot (mysql_select) vs %s" metric)
        ~x_label:metric ~y_label:"cost (executed BB)" ()
    in
    Plot.add_series chart ~name:"worst-case cost" ~marker:'*' points;
    Format.fprintf ppf "%s@." (Plot.render_string chart)
  in
  plot "RMS" rms_points;
  plot "DRMS" drms_points;
  Exp_common.fit_note ppf ~label:"cost vs drms" drms_points;
  let spread pts =
    let xs = List.map fst pts in
    List.fold_left Float.max neg_infinity xs -. List.fold_left Float.min infinity xs
  in
  Format.fprintf ppf
    "  input-size spread: rms %.0f vs drms %.0f (paper: rms stays near the \
     buffer size; drms tracks the table)@."
    (spread rms_points) (spread drms_points)
