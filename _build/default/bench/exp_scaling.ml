(* Figure 16: time and space overhead as a function of the number of
   threads on the OMP suite. *)

module Harness = Aprof_tools.Harness

let thread_counts = [ 1; 2; 4; 8 ]

let run ?(quick = false) ppf =
  Exp_common.section ppf
    "fig16: overhead as a function of the number of threads (OMP suite)";
  let scale = if quick then 150 else 300 in
  let names = Exp_common.omp_suite () in
  let per_thread =
    List.map
      (fun threads ->
        let rows =
          Harness.geometric_rows
            (List.map
               (fun name ->
                 let r =
                   Exp_table1.sized_run ~threads ~scale
                     ~min_events:(if quick then 10_000 else 20_000) name
                 in
                 Harness.measure
                   ~trace:r.Exp_common.result.Aprof_vm.Interp.trace
                   ~program_words:
                     r.Exp_common.result.Aprof_vm.Interp.memory_high_water
                   (Harness.standard_factories ()))
               names)
        in
        (threads, rows))
      thread_counts
  in
  let tools =
    match per_thread with
    | (_, rows) :: _ -> List.map (fun (t, _, _, _) -> t) rows
    | [] -> []
  in
  Format.fprintf ppf "  (a) slowdown vs native replay@.";
  Format.fprintf ppf "    %-10s" "tool";
  List.iter (fun t -> Format.fprintf ppf " %8s" (Printf.sprintf "%dthr" t)) thread_counts;
  Format.fprintf ppf "@.";
  List.iter
    (fun tool ->
      Format.fprintf ppf "    %-10s" tool;
      List.iter
        (fun (_, rows) ->
          let _, native, _, _ = List.find (fun (t, _, _, _) -> t = tool) rows in
          Format.fprintf ppf " %7.1fx" native)
        per_thread;
      Format.fprintf ppf "@.")
    tools;
  Format.fprintf ppf "  (b) space overhead@.";
  Format.fprintf ppf "    %-10s" "tool";
  List.iter (fun t -> Format.fprintf ppf " %8s" (Printf.sprintf "%dthr" t)) thread_counts;
  Format.fprintf ppf "@.";
  List.iter
    (fun tool ->
      Format.fprintf ppf "    %-10s" tool;
      List.iter
        (fun (_, rows) ->
          let _, _, _, space = List.find (fun (t, _, _, _) -> t = tool) rows in
          Format.fprintf ppf " %7.2fx" space)
        per_thread;
      Format.fprintf ppf "@.")
    tools;
  Format.fprintf ppf
    "  (paper shape: slowdown and space grow with threads; in the paper \
     aprof-drms stays below helgrind throughout — here the small simulated \
     heaps let the per-thread shadows pass helgrind at high thread counts)@."
