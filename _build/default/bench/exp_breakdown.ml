(* Figure 13: routine-by-routine thread vs external input on MySQL and
   vips — the per-routine percentage of induced first-reads, partitioned
   by source, sorted by decreasing total. *)

module Metrics = Aprof_core.Metrics

let total_first_reads (d : Aprof_core.Profile.routine_data) =
  d.Aprof_core.Profile.first_read_ops
  + d.Aprof_core.Profile.induced_thread_ops
  + d.Aprof_core.Profile.induced_external_ops

let breakdown ppf run =
  let rows =
    Metrics.routine_breakdown run.Exp_common.profile
    |> List.filter_map (fun (rid, t, e) ->
           let name =
             Aprof_trace.Routine_table.name
               run.Exp_common.result.Aprof_vm.Interp.routines rid
           in
           let d =
             List.assoc rid
               (Aprof_core.Profile.merge_threads run.Exp_common.profile)
           in
           if total_first_reads d = 0 then None
           else Some (name, [ ("thread", t); ("external", e) ]))
  in
  Format.fprintf ppf "%s@."
    (Aprof_plot.Ascii_plot.histogram
       ~title:
         (Printf.sprintf "  %% induced first-reads per routine (%s)"
            run.Exp_common.name)
       ~rows)

let run ppf =
  Exp_common.section ppf "fig13: routine-by-routine thread and external input";
  let mysql = Exp_common.run_named ~threads:8 ~scale:300 "mysqlslap" in
  breakdown ppf mysql;
  let vips = Exp_common.run_named ~threads:4 ~scale:100 "vips" in
  breakdown ppf vips;
  Format.fprintf ppf
    "  (paper: MySQL's induced first-reads are mostly external — network and \
     I/O — while vips is dominated by thread input)@."
