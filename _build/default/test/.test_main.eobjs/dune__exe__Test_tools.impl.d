test/test_tools.ml: Alcotest Aprof_core Aprof_tools Aprof_trace Aprof_util Aprof_vm Aprof_workloads Format List Option
