test/test_workloads.ml: Alcotest Aprof_core Aprof_vm Aprof_workloads Helpers List Profile Trace
