test/test_paper_examples.ml: Alcotest Aprof_vm Aprof_workloads Helpers List Profile Trace
