test/test_core_units.ml: Alcotest Aprof_core Aprof_trace Aprof_util List Option QCheck2 QCheck_alcotest
