test/test_reuse.ml: Alcotest Aprof_core Aprof_trace Aprof_vm List Option
