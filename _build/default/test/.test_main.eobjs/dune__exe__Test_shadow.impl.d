test/test_shadow.ml: Alcotest Aprof_shadow Hashtbl List Option Printf QCheck2 QCheck_alcotest String
