test/test_comm.ml: Alcotest Aprof_core Aprof_trace Aprof_util Aprof_vm Aprof_workloads Gen_trace List Option QCheck2 QCheck_alcotest
