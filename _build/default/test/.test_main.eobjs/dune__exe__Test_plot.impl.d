test/test_plot.ml: Alcotest Aprof_plot String
