test/test_modes.ml: Alcotest Aprof_core Aprof_vm Aprof_workloads Gen_trace Helpers List Option QCheck2 QCheck_alcotest
