test/test_vm.ml: Alcotest Aprof_trace Aprof_util Aprof_vm Aprof_workloads List String
