test/helpers.ml: Alcotest Aprof_core Aprof_trace Aprof_util Aprof_workloads List
