test/test_cct.ml: Alcotest Aprof_core Aprof_trace Aprof_vm Aprof_workloads Format Helpers List Option
