test/test_differential.ml: Alcotest Aprof_core Aprof_util Gen_trace Helpers List Option QCheck2 QCheck_alcotest
