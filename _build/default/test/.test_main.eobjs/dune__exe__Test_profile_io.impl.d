test/test_profile_io.ml: Alcotest Aprof_core Aprof_trace Aprof_vm Aprof_workloads Helpers List Option
