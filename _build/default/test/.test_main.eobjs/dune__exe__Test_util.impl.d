test/test_util.ml: Alcotest Aprof_util Array Float List QCheck2 QCheck_alcotest
