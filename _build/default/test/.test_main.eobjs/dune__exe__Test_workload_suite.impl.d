test/test_workload_suite.ml: Alcotest Aprof_tools Aprof_util Aprof_vm Aprof_workloads Format Helpers List Profile Trace
