test/test_trace.ml: Alcotest Aprof_trace Aprof_util Aprof_workloads Filename Gen_trace In_channel List Out_channel QCheck2 QCheck_alcotest Sys
