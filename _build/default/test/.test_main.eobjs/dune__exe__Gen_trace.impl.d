test/gen_trace.ml: Aprof_trace Aprof_util Array List QCheck2 Random Seq String
