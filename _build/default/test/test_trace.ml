(* Trace layer: event serialization, the timestamp merge of Section 3,
   the well-formedness checker, and the routine table. *)

module Event = Aprof_trace.Event
module Trace = Aprof_trace.Trace
module Routine_table = Aprof_trace.Routine_table
module Vec = Aprof_util.Vec

let gen_event =
  let open QCheck2.Gen in
  let tid = int_range 0 3 in
  let addr = int_range 0 1000 in
  let len = int_range 1 16 in
  oneof
    [
      map2 (fun tid routine -> Event.Call { tid; routine }) tid (int_range 0 5);
      map (fun tid -> Event.Return { tid }) tid;
      map2 (fun tid addr -> Event.Read { tid; addr }) tid addr;
      map2 (fun tid addr -> Event.Write { tid; addr }) tid addr;
      map2 (fun tid units -> Event.Block { tid; units }) tid (int_range 0 50);
      map3 (fun tid addr len -> Event.User_to_kernel { tid; addr; len }) tid addr len;
      map3 (fun tid addr len -> Event.Kernel_to_user { tid; addr; len }) tid addr len;
      map2 (fun tid lock -> Event.Acquire { tid; lock }) tid (int_range 0 9);
      map2 (fun tid lock -> Event.Release { tid; lock }) tid (int_range 0 9);
      map3 (fun tid addr len -> Event.Alloc { tid; addr; len }) tid addr len;
      map3 (fun tid addr len -> Event.Free { tid; addr; len }) tid addr len;
      map (fun tid -> Event.Thread_start { tid }) tid;
      map (fun tid -> Event.Thread_exit { tid }) tid;
      map (fun tid -> Event.Switch_thread { tid }) tid;
    ]

let line_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"event line roundtrip" ~count:500
       ~print:Event.to_string gen_event (fun e ->
         match Event.of_line (Event.to_line e) with
         | Ok e' -> Event.equal e e'
         | Error _ -> false))

let test_of_line_errors () =
  List.iter
    (fun line ->
      match Event.of_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse failure on %S" line)
    [ ""; "Z 1"; "C 1"; "C x 2"; "L 1 2 3"; "K 1 2" ]

(* Build simple per-thread traces: each thread gets increasing even or
   odd timestamps so the merged order is fully determined. *)
let thread_trace tid events =
  let tr = Vec.create () in
  List.iter (fun (ts, ev) -> Vec.push tr { Trace.ts; ev }) events;
  (tid, tr)

let test_merge_order () =
  let t0 =
    thread_trace 0
      [ (0, Event.Read { tid = 0; addr = 1 }); (2, Event.Read { tid = 0; addr = 2 }) ]
  in
  let t1 = thread_trace 1 [ (1, Event.Write { tid = 1; addr = 1 }) ] in
  let merged = Trace.merge ~tie_break:`Lowest_tid [ t0; t1 ] in
  let kinds = Vec.to_list merged |> List.map Event.to_line in
  Alcotest.(check (list string)) "interleaving with switches"
    [ "W 0"; "L 0 1"; "W 1"; "S 1 1"; "W 0"; "L 0 2" ]
    kinds

let test_merge_validation () =
  let bad = thread_trace 0 [ (5, Event.Read { tid = 0; addr = 1 }); (3, Event.Read { tid = 0; addr = 2 }) ] in
  Alcotest.check_raises "decreasing timestamps"
    (Invalid_argument "Trace.merge: decreasing timestamps in thread 0")
    (fun () -> ignore (Trace.merge ~tie_break:`Lowest_tid [ bad ]));
  let wrong = thread_trace 2 [ (0, Event.Read { tid = 1; addr = 1 }) ] in
  Alcotest.check_raises "foreign tid"
    (Invalid_argument "Trace.merge: thread 2 trace contains event of thread 1")
    (fun () -> ignore (Trace.merge ~tie_break:`Lowest_tid [ wrong ]))

(* Property: merging preserves each thread's subsequence, regardless of
   tie-breaking. *)
let gen_threads =
  let open QCheck2.Gen in
  let thread tid =
    let* n = int_range 0 40 in
    let* tss = list_repeat n (int_range 0 20) in
    let tss = List.sort compare tss in
    let* evs =
      list_repeat n (map (fun addr -> Event.Read { tid; addr }) (int_range 0 50))
    in
    return (tid, tss, evs)
  in
  let* t0 = thread 0 in
  let* t1 = thread 1 in
  let* t2 = thread 2 in
  return [ t0; t1; t2 ]

let subsequence_preserved triples =
  let inputs =
    List.map
      (fun (tid, tss, evs) ->
        let tr = Vec.create () in
        List.iter2 (fun ts ev -> Vec.push tr { Trace.ts; ev }) tss evs;
        (tid, tr))
      triples
  in
  let rng = Aprof_util.Rng.create 11 in
  let merged = Trace.merge ~tie_break:(`Rng rng) inputs in
  List.for_all
    (fun (tid, _, evs) ->
      let seen =
        Vec.fold_left
          (fun acc ev ->
            if (not (Event.is_switch ev)) && Event.tid ev = tid then ev :: acc
            else acc)
          [] merged
        |> List.rev
      in
      seen = evs)
    triples

let merge_subsequences =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"merge preserves per-thread order" ~count:200
       gen_threads subsequence_preserved)

let split_merge_identity trace =
  let split = Trace.split trace in
  let merged = Trace.merge ~tie_break:`Lowest_tid split in
  let strip t =
    Vec.to_list t |> List.filter (fun e -> not (Event.is_switch e))
  in
  strip merged = strip trace

let split_merge =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"split then merge preserves events" ~count:100
       ~print:Gen_trace.print (Gen_trace.gen ()) split_merge_identity)

let test_well_formed_negatives () =
  let t = Vec.create () in
  Vec.push t (Event.Return { tid = 0 });
  Alcotest.(check bool) "return without call flagged" true
    (Trace.well_formed t <> []);
  let t2 = Vec.create () in
  Vec.push t2 (Event.Thread_exit { tid = 0 });
  Vec.push t2 (Event.Read { tid = 0; addr = 1 });
  Alcotest.(check bool) "act after exit flagged" true (Trace.well_formed t2 <> [])

let save_load_roundtrip trace =
  let tmp = Filename.temp_file "aprof" ".trace" in
  Out_channel.with_open_text tmp (fun oc -> Trace.save oc trace);
  let back =
    In_channel.with_open_text tmp (fun ic ->
        match Trace.load ic with Ok t -> t | Error e -> failwith e)
  in
  Sys.remove tmp;
  Vec.to_list back = Vec.to_list trace

let save_load =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"save/load roundtrip" ~count:50
       ~print:Gen_trace.print (Gen_trace.gen ()) save_load_roundtrip)

let test_stats () =
  let trace, _ = Aprof_workloads.Micro.fig1a () in
  let s = Trace.stats trace in
  Alcotest.(check int) "calls" 2 s.Trace.calls;
  Alcotest.(check int) "reads" 2 s.Trace.reads;
  Alcotest.(check int) "writes" 1 s.Trace.writes;
  Alcotest.(check int) "threads" 2 s.Trace.threads;
  Alcotest.(check int) "distinct addresses" 1 s.Trace.distinct_addresses;
  Alcotest.(check int) "switches" 3 s.Trace.switches

let test_routine_table () =
  let tbl = Routine_table.create () in
  let a = Routine_table.intern tbl "alpha" in
  let b = Routine_table.intern tbl "beta" in
  Alcotest.(check int) "dense ids" 0 a;
  Alcotest.(check int) "dense ids 2" 1 b;
  Alcotest.(check int) "intern is idempotent" a (Routine_table.intern tbl "alpha");
  Alcotest.(check string) "name" "beta" (Routine_table.name tbl b);
  Alcotest.(check (option int)) "find" (Some 0) (Routine_table.find tbl "alpha");
  Alcotest.(check (option int)) "find missing" None (Routine_table.find tbl "x");
  Alcotest.(check int) "size" 2 (Routine_table.size tbl);
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Routine_table.name: unknown id 5") (fun () ->
      ignore (Routine_table.name tbl 5))

let suite =
  [
    line_roundtrip;
    Alcotest.test_case "of_line errors" `Quick test_of_line_errors;
    Alcotest.test_case "merge order" `Quick test_merge_order;
    Alcotest.test_case "merge validation" `Quick test_merge_validation;
    merge_subsequences;
    split_merge;
    Alcotest.test_case "well-formed negatives" `Quick test_well_formed_negatives;
    save_load;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "routine table" `Quick test_routine_table;
  ]
