(* The restricted induction modes (Figure 6b and ablations): per-routine
   input-size sums must be monotone rms <= restricted drms <= full drms. *)

open Helpers
module Profile = Aprof_core.Profile

let sums mode trace =
  let p = Aprof_core.Drms_profiler.create ~mode () in
  Aprof_core.Drms_profiler.run p trace;
  let profile = Aprof_core.Drms_profiler.finish p in
  Profile.keys profile
  |> List.filter_map (fun k ->
         Option.map
           (fun (d : Profile.routine_data) ->
             (k, d.Profile.sum_rms, d.Profile.sum_drms))
           (Profile.data profile k))
  |> List.sort compare

let monotone trace =
  let full = sums `Both trace in
  let ext = sums `External_only trace in
  let thr = sums `Thread_only trace in
  let none = sums `None trace in
  List.for_all2
    (fun (k1, rms, dfull) ((k2, _, dext), ((k3, _, dthr), (k4, _, dnone))) ->
      k1 = k2 && k1 = k3 && k1 = k4 && rms <= dext && rms <= dthr
      && dext <= dfull && dthr <= dfull && dnone = rms)
    full
    (List.combine ext (List.combine thr none))

let modes_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"mode monotonicity" ~count:150
       ~print:Gen_trace.print (Gen_trace.gen ()) monotone)

(* On the stream reader all dynamic input is external; on the
   producer-consumer all of it is thread input. *)
let test_pure_sources () =
  let sr = run_workload (Aprof_workloads.Patterns.stream_reader ~n:15) in
  let sr_trace = sr.Aprof_vm.Interp.trace in
  Alcotest.(check bool) "stream reader: ext-only = full" true
    (sums `External_only sr_trace = sums `Both sr_trace);
  let pc = run_workload (Aprof_workloads.Patterns.producer_consumer ~n:15) in
  let pc_trace = pc.Aprof_vm.Interp.trace in
  Alcotest.(check bool) "producer-consumer: thread-only = full" true
    (sums `Thread_only pc_trace = sums `Both pc_trace);
  Alcotest.(check bool) "producer-consumer: ext-only = rms" true
    (sums `External_only pc_trace = sums `None pc_trace)

let suite =
  [
    modes_prop;
    Alcotest.test_case "pure-source workloads" `Quick test_pure_sources;
  ]
