(* Shared helpers for the test suites. *)

module Event = Aprof_trace.Event
module Trace = Aprof_trace.Trace
module Vec = Aprof_util.Vec
module Profile = Aprof_core.Profile

let run_drms ?overflow_limit ?mode trace =
  let p = Aprof_core.Drms_profiler.create ?overflow_limit ?mode () in
  Aprof_core.Drms_profiler.run p trace;
  Aprof_core.Drms_profiler.finish p

let run_naive trace =
  let p = Aprof_core.Naive_drms.create () in
  Aprof_core.Naive_drms.run p trace;
  Aprof_core.Naive_drms.finish p

let run_rms trace =
  let p = Aprof_core.Rms_profiler.create () in
  Aprof_core.Rms_profiler.run p trace;
  Aprof_core.Rms_profiler.finish p

(* Sum of input sizes over all activations of [routine] in [profile]:
   with one activation per distinct input this pins exact values. *)
let drms_values profile ~tid ~routine =
  match Profile.data profile { Profile.tid; routine } with
  | None -> []
  | Some d ->
    List.concat_map
      (fun (p : Profile.point) -> List.init p.Profile.calls (fun _ -> p.Profile.input))
      d.Profile.drms_points

let rms_values profile ~tid ~routine =
  match Profile.data profile { Profile.tid; routine } with
  | None -> []
  | Some d ->
    List.concat_map
      (fun (p : Profile.point) -> List.init p.Profile.calls (fun _ -> p.Profile.input))
      d.Profile.rms_points

let routine_id table name =
  match Aprof_trace.Routine_table.find table name with
  | Some id -> id
  | None -> Alcotest.failf "routine %s not interned" name

(* Activation multiset (rms, drms) per (tid, routine), for differential
   tests: profiles must agree exactly.  Costs are compared separately
   because the two implementations share Cost_model. *)
let signature profile =
  Profile.keys profile
  |> List.filter_map (fun k ->
         match Profile.data profile k with
         | None -> None
         | Some d ->
           let drms =
             List.map
               (fun (p : Profile.point) -> (p.Profile.input, p.Profile.calls, p.Profile.max_cost))
               d.Profile.drms_points
           in
           let rms =
             List.map
               (fun (p : Profile.point) -> (p.Profile.input, p.Profile.calls, p.Profile.max_cost))
               d.Profile.rms_points
           in
           Some ((k.Profile.tid, k.Profile.routine), (drms, rms, d.Profile.activations)))
  |> List.sort compare

let ops_signature profile =
  Profile.keys profile
  |> List.filter_map (fun k ->
         match Profile.data profile k with
         | None -> None
         | Some d ->
           Some
             ( (k.Profile.tid, k.Profile.routine),
               ( d.Profile.first_read_ops,
                 d.Profile.induced_thread_ops,
                 d.Profile.induced_external_ops ) ))
  |> List.sort compare

let check_profiles_equal msg p1 p2 =
  Alcotest.(check (list (pair (pair int int) (triple (list (triple int int int)) (list (triple int int int)) int))))
    msg (signature p1) (signature p2)

let check_ops_equal msg p1 p2 =
  Alcotest.(check (list (pair (pair int int) (triple int int int))))
    msg (ops_signature p1) (ops_signature p2)

let run_workload ?scheduler ?(seed = 7) w =
  Aprof_workloads.Workload.run ?scheduler w ~seed
