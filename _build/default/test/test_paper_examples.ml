(* Exact drms/rms values from the paper's worked examples: Figure 1a/1b,
   the producer-consumer pattern (Figure 2), buffered streaming
   (Figure 3), and the ancestor-decrement path. *)

open Helpers
module Workloads = Aprof_workloads

let check_values msg profile ~tid ~routine ~rms ~drms =
  Alcotest.(check (list int)) (msg ^ " drms") drms (drms_values profile ~tid ~routine);
  Alcotest.(check (list int)) (msg ^ " rms") rms (rms_values profile ~tid ~routine)

let test_fig1a () =
  let trace, tbl = Workloads.Micro.fig1a () in
  Alcotest.(check (list string)) "well-formed" [] (Trace.well_formed trace);
  let profile = run_drms trace in
  check_values "f" profile ~tid:0 ~routine:(routine_id tbl "f") ~rms:[ 1 ] ~drms:[ 2 ];
  check_values "g" profile ~tid:1 ~routine:(routine_id tbl "g") ~rms:[ 0 ] ~drms:[ 0 ]

let test_fig1b () =
  let trace, tbl = Workloads.Micro.fig1b () in
  let profile = run_drms trace in
  check_values "f" profile ~tid:0 ~routine:(routine_id tbl "f") ~rms:[ 1 ] ~drms:[ 2 ];
  check_values "h" profile ~tid:0 ~routine:(routine_id tbl "h") ~rms:[ 1 ] ~drms:[ 1 ]

let test_ancestor_decrement () =
  let trace, tbl = Workloads.Micro.ancestor_decrement () in
  let profile = run_drms trace in
  check_values "parent" profile ~tid:0
    ~routine:(routine_id tbl "parent")
    ~rms:[ 1 ] ~drms:[ 1 ];
  check_values "child" profile ~tid:0
    ~routine:(routine_id tbl "child")
    ~rms:[ 1 ] ~drms:[ 1 ]

let test_external_refill () =
  let n = 10 in
  let trace, tbl = Workloads.Micro.external_refill ~n in
  let profile = run_drms trace in
  check_values "main" profile ~tid:0 ~routine:(routine_id tbl "main")
    ~rms:[ 1 ] ~drms:[ n ]

(* Figure 2.  The consumer routine must see rms = 1 and drms = n; every
   consumeData activation reads one induced cell. *)
let test_producer_consumer () =
  let n = 25 in
  let result = run_workload (Workloads.Patterns.producer_consumer ~n) in
  Alcotest.(check (list string)) "well-formed" []
    (Trace.well_formed result.Aprof_vm.Interp.trace);
  let profile = run_drms result.Aprof_vm.Interp.trace in
  let tbl = result.Aprof_vm.Interp.routines in
  let consumer = routine_id tbl "consumer" in
  (* The consumer runs in the spawned thread; find its tid from the data. *)
  let keys =
    List.filter
      (fun k -> k.Profile.routine = consumer)
      (Profile.keys profile)
  in
  match keys with
  | [ k ] ->
    check_values "consumer" profile ~tid:k.Profile.tid ~routine:consumer
      ~rms:[ 1 ] ~drms:[ n ]
  | _ -> Alcotest.fail "expected exactly one consumer activation key"

let test_producer_consumer_consume_data () =
  let n = 8 in
  let result = run_workload (Workloads.Patterns.producer_consumer ~n) in
  let profile = run_drms result.Aprof_vm.Interp.trace in
  let tbl = result.Aprof_vm.Interp.routines in
  let consume = routine_id tbl "consumeData" in
  let keys =
    List.filter (fun k -> k.Profile.routine = consume) (Profile.keys profile)
  in
  match keys with
  | [ k ] ->
    (* Each of the n activations reads exactly one cell: it is both that
       activation's own first access (rms = 1) and induced (drms = 1). *)
    check_values "consumeData" profile ~tid:k.Profile.tid ~routine:consume
      ~rms:(List.init n (fun _ -> 1))
      ~drms:(List.init n (fun _ -> 1))
  | _ -> Alcotest.fail "expected one consumeData key"

(* Figure 3: drms of streamReader grows with n, rms stays constant. *)
let test_stream_reader () =
  let n = 30 in
  let result = run_workload (Workloads.Patterns.stream_reader ~n) in
  let profile = run_drms result.Aprof_vm.Interp.trace in
  let tbl = result.Aprof_vm.Interp.routines in
  let reader = routine_id tbl "streamReader" in
  (match drms_values profile ~tid:0 ~routine:reader with
  | [ d ] -> Alcotest.(check int) "drms = n" n d
  | _ -> Alcotest.fail "expected a single streamReader activation");
  match rms_values profile ~tid:0 ~routine:reader with
  | [ r ] -> Alcotest.(check int) "rms = 1" 1 r
  | _ -> Alcotest.fail "expected a single streamReader activation"

(* Inequality 1: drms >= rms on every activation, here on a real
   multi-threaded run. *)
let test_inequality () =
  let result = run_workload (Workloads.Patterns.producer_consumer ~n:12) in
  let profile = run_drms result.Aprof_vm.Interp.trace in
  List.iter
    (fun k ->
      match Profile.data profile k with
      | None -> ()
      | Some d ->
        Alcotest.(check bool) "sum drms >= sum rms" true
          (d.Profile.sum_drms >= d.Profile.sum_rms))
    (Profile.keys profile)

let suite =
  [
    Alcotest.test_case "fig1a" `Quick test_fig1a;
    Alcotest.test_case "fig1b" `Quick test_fig1b;
    Alcotest.test_case "ancestor decrement" `Quick test_ancestor_decrement;
    Alcotest.test_case "external refill" `Quick test_external_refill;
    Alcotest.test_case "producer-consumer" `Quick test_producer_consumer;
    Alcotest.test_case "consumeData per-activation" `Quick
      test_producer_consumer_consume_data;
    Alcotest.test_case "stream reader" `Quick test_stream_reader;
    Alcotest.test_case "drms >= rms" `Quick test_inequality;
  ]
