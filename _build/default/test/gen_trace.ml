(* QCheck generator of well-formed random traces: per-thread streams with
   balanced call/return over a small address space (to force collisions
   and cross-thread interference), randomly interleaved with switchThread
   events inserted.  This is the input distribution for the differential
   tests of the drms algorithm against the naive oracle. *)

module Event = Aprof_trace.Event
module Vec = Aprof_util.Vec

type params = {
  max_threads : int;
  max_addr : int;
  events_per_thread : int;
  max_depth : int;
  with_kernel : bool;
}

let default_params =
  {
    max_threads = 4;
    max_addr = 10;
    events_per_thread = 120;
    max_depth = 5;
    with_kernel = true;
  }

let gen_thread_stream st p tid n_routines =
  let events = ref [] in
  let depth = ref 0 in
  let emit e = events := e :: !events in
  let addr () = Random.State.int st p.max_addr in
  let routine () = Random.State.int st n_routines in
  let n = 1 + Random.State.int st p.events_per_thread in
  for _ = 1 to n do
    let choice = Random.State.int st (if p.with_kernel then 100 else 80) in
    if choice < 15 && !depth < p.max_depth then begin
      emit (Event.Call { tid; routine = routine () });
      incr depth
    end
    else if choice < 25 && !depth > 0 then begin
      emit (Event.Return { tid });
      decr depth
    end
    else if choice < 55 then emit (Event.Read { tid; addr = addr () })
    else if choice < 75 then emit (Event.Write { tid; addr = addr () })
    else if choice < 80 then
      emit (Event.Block { tid; units = 1 + Random.State.int st 5 })
    else if choice < 95 || not p.with_kernel then begin
      let a = addr () in
      let len = 1 + Random.State.int st (max 1 (p.max_addr - a)) in
      if choice < 88 then emit (Event.Kernel_to_user { tid; addr = a; len })
      else emit (Event.User_to_kernel { tid; addr = a; len })
    end
    else begin
      (* occasional frees exercise the allocator-recycling path *)
      let a = addr () in
      let len = 1 + Random.State.int st (max 1 (p.max_addr - a)) in
      emit (Event.Free { tid; addr = a; len })
    end
  done;
  while !depth > 0 do
    emit (Event.Return { tid });
    decr depth
  done;
  List.rev !events

let gen_trace_with st p =
  let n_threads = 1 + Random.State.int st p.max_threads in
  let n_routines = 1 + Random.State.int st 6 in
  let streams =
    Array.init n_threads (fun tid -> ref (gen_thread_stream st p tid n_routines))
  in
  let trace = Vec.create () in
  let current = ref (-1) in
  let remaining = ref n_threads in
  while !remaining > 0 do
    (* Pick a random non-empty stream and consume a random burst. *)
    let nonempty =
      Array.to_list streams
      |> List.mapi (fun i s -> (i, s))
      |> List.filter (fun (_, s) -> !s <> [])
    in
    match nonempty with
    | [] -> remaining := 0
    | _ :: _ ->
      let i, s = List.nth nonempty (Random.State.int st (List.length nonempty)) in
      let burst = 1 + Random.State.int st 8 in
      for _ = 1 to burst do
        match !s with
        | [] -> ()
        | e :: rest ->
          if i <> !current then begin
            Vec.push trace (Event.Switch_thread { tid = i });
            current := i
          end;
          Vec.push trace e;
          s := rest;
          if rest = [] then decr remaining
      done
  done;
  trace

let gen ?(params = default_params) () : Aprof_trace.Trace.t QCheck2.Gen.t =
  QCheck2.Gen.make_primitive
    ~gen:(fun st -> gen_trace_with st params)
    ~shrink:(fun _ -> Seq.empty)

let print trace =
  Vec.to_list trace |> List.map Event.to_string |> String.concat "\n"
