(* The load-bearing correctness tests: on arbitrary well-formed traces the
   read/write timestamping algorithm (Figure 8/9) must produce exactly the
   profile of the naive set-based algorithm (Figure 7), under every
   configuration — including an artificially tiny renumbering threshold
   that forces the counter-overflow path to run constantly. *)

open Helpers

let count = 300

let make_test ?(params = Gen_trace.default_params) name check =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count
       ~print:Gen_trace.print
       (Gen_trace.gen ~params ())
       check)

let drms_equals_naive trace =
  let p1 = run_drms trace in
  let p2 = run_naive trace in
  check_profiles_equal "timestamping = naive" p1 p2;
  true

let ops_equal_naive trace =
  let p1 = run_drms trace in
  let p2 = run_naive trace in
  check_ops_equal "op attribution equal" p1 p2;
  true

let renumbering_invariant trace =
  let p1 = run_drms trace in
  let p2 = run_drms ~overflow_limit:16 trace in
  check_profiles_equal "tiny overflow limit = default" p1 p2;
  true

let rms_profiler_agrees trace =
  (* The standalone aprof must agree with the rms side of both the naive
     oracle and the combined profiler. *)
  let p_rms = run_rms trace in
  let p_drms = run_drms trace in
  let rms_sig p =
    Aprof_core.Profile.keys p
    |> List.filter_map (fun k ->
           Option.map
             (fun (d : Aprof_core.Profile.routine_data) ->
               ( (k.Aprof_core.Profile.tid, k.Aprof_core.Profile.routine),
                 List.map
                   (fun (pt : Aprof_core.Profile.point) ->
                     (pt.Aprof_core.Profile.input, pt.Aprof_core.Profile.calls))
                   d.Aprof_core.Profile.rms_points ))
             (Aprof_core.Profile.data p k))
    |> List.sort compare
  in
  Alcotest.(check (list (pair (pair int int) (list (pair int int)))))
    "rms profiles equal" (rms_sig p_drms) (rms_sig p_rms);
  true

let inequality_holds trace =
  let p = run_drms trace in
  List.for_all
    (fun k ->
      match Aprof_core.Profile.data p k with
      | None -> true
      | Some d -> d.Aprof_core.Profile.sum_drms >= d.Aprof_core.Profile.sum_rms)
    (Aprof_core.Profile.keys p)

let mode_none_is_rms trace =
  (* With inducement disabled the drms degenerates to the rms. *)
  let p = run_drms ~mode:`None trace in
  List.for_all
    (fun k ->
      match Aprof_core.Profile.data p k with
      | None -> true
      | Some d ->
        d.Aprof_core.Profile.drms_points = d.Aprof_core.Profile.rms_points)
    (Aprof_core.Profile.keys p)

let invariant2_holds trace =
  (* Replay, and at sampled prefixes compare the suffix-sum drms of each
     pending activation against the naive oracle's explicit value. *)
  let p1 = Aprof_core.Drms_profiler.create () in
  let p2 = Aprof_core.Naive_drms.create () in
  let step = 7 in
  let i = ref 0 in
  let ok = ref true in
  Aprof_util.Vec.iter
    (fun ev ->
      Aprof_core.Drms_profiler.on_event p1 ev;
      Aprof_core.Naive_drms.on_event p2 ev;
      incr i;
      if !i mod step = 0 then
        for tid = 0 to 3 do
          let a = Aprof_core.Drms_profiler.current_drms p1 ~tid in
          let b = Aprof_core.Naive_drms.current_drms p2 ~tid in
          if a <> b then ok := false
        done)
    trace;
  !ok

let single_thread_params =
  { Gen_trace.default_params with max_threads = 1; with_kernel = false }

let kernel_free_params = { Gen_trace.default_params with with_kernel = false }

let deep_params =
  { Gen_trace.default_params with max_depth = 12; events_per_thread = 250 }

let suite =
  [
    make_test "drms = naive (full)" drms_equals_naive;
    make_test ~params:single_thread_params "drms = naive (single thread)"
      drms_equals_naive;
    make_test ~params:kernel_free_params "drms = naive (no kernel)"
      drms_equals_naive;
    make_test ~params:deep_params "drms = naive (deep stacks)" drms_equals_naive;
    make_test "first-read op attribution = naive" ops_equal_naive;
    make_test "renumbering preserves profiles" renumbering_invariant;
    make_test "standalone rms profiler agrees" rms_profiler_agrees;
    make_test "drms >= rms (Inequality 1)" inequality_holds;
    make_test "mode None degenerates to rms" mode_none_is_rms;
    make_test "Invariant 2 at prefixes" invariant2_holds;
  ]
