(* The communication profiler: exact matrices on hand-built traces and
   sanity on workloads. *)

open Aprof_vm.Program
module Comm = Aprof_core.Comm_profiler
module Event = Aprof_trace.Event
module Vec = Aprof_util.Vec

let run_trace trace =
  let c = Comm.create () in
  Comm.run c trace;
  Comm.report c

let test_fig1a_matrix () =
  let trace, _ = Aprof_workloads.Micro.fig1a () in
  let r = run_trace trace in
  (* g (thread 1) writes x; f (thread 0) re-reads it: one value 1 -> 0. *)
  Alcotest.(check int) "one value" 1 r.Comm.total_values;
  (match r.Comm.thread_matrix with
  | [ e ] ->
    Alcotest.(check int) "writer" 1 e.Comm.from_id;
    Alcotest.(check int) "reader" 0 e.Comm.to_id;
    Alcotest.(check int) "count" 1 e.Comm.values
  | _ -> Alcotest.fail "expected a single thread edge");
  Alcotest.(check int) "one communicating cell" 1 r.Comm.communicating_cells;
  Alcotest.(check int) "single pair" 1 r.Comm.single_pair_cells

let test_kernel_edge () =
  let trace, _ = Aprof_workloads.Micro.external_refill ~n:5 in
  let r = run_trace trace in
  Alcotest.(check int) "five refills" 5 r.Comm.total_values;
  match r.Comm.thread_matrix with
  | [ e ] ->
    Alcotest.(check int) "kernel writer" Comm.kernel_id e.Comm.from_id;
    Alcotest.(check int) "five values" 5 e.Comm.values
  | _ -> Alcotest.fail "expected a single kernel edge"

let test_producer_consumer_routines () =
  let result =
    Aprof_workloads.Workload.run
      (Aprof_workloads.Patterns.producer_consumer ~n:12)
      ~seed:3
  in
  let r = run_trace result.Aprof_vm.Interp.trace in
  let tbl = result.Aprof_vm.Interp.routines in
  let id n = Option.get (Aprof_trace.Routine_table.find tbl n) in
  let edge =
    List.find
      (fun e ->
        e.Comm.from_id = id "produceData" && e.Comm.to_id = id "consumeData")
      r.Comm.routine_matrix
  in
  Alcotest.(check int) "12 values produced to consumed" 12 edge.Comm.values

let test_multi_pair_cell () =
  (* Three threads ping through one cell: the cell must not be counted as
     single-pair. *)
  let prog =
    let* cell = alloc 1 in
    let* m = Aprof_vm.Sync.Mutex.create () in
    let worker =
      call "bump"
        (for_ 1 5 (fun _ ->
             Aprof_vm.Sync.Mutex.with_lock m
               (let* v = read cell in
                write cell (v + 1))))
    in
    let* tids = Aprof_workloads.Blocks.spawn_all [ worker; worker; worker ] in
    Aprof_workloads.Blocks.join_all tids
  in
  let result =
    Aprof_vm.Interp.run
      {
        Aprof_vm.Interp.default_config with
        scheduler = Aprof_vm.Scheduler.Round_robin { slice = 3 };
      }
      [ prog ]
  in
  let r = run_trace result.Aprof_vm.Interp.trace in
  Alcotest.(check bool) "cell shared by several pairs" true
    (r.Comm.single_pair_cells < r.Comm.communicating_cells)

(* Consistency with the drms profiler: total communicated values equals
   the total number of induced first-reads (both count line-1 hits), on
   traces whose every read happens under some routine. *)
let totals_agree trace =
  let c = Comm.create () in
  Comm.run c trace;
  let drms = Aprof_core.Drms_profiler.create () in
  Aprof_core.Drms_profiler.run drms trace;
  let profile = Aprof_core.Drms_profiler.finish drms in
  let induced =
    List.fold_left
      (fun acc (_, d) ->
        acc + d.Aprof_core.Profile.induced_thread_ops
        + d.Aprof_core.Profile.induced_external_ops)
      0
      (Aprof_core.Profile.merge_threads profile)
  in
  (* the drms profiler does not attribute reads outside any routine, so
     compare against the comm values whose consumer is a routine *)
  let comm_in_routines =
    List.fold_left
      (fun acc e -> if e.Comm.to_id <> -1 then acc + e.Comm.values else acc)
      0
      (Comm.report c).Comm.routine_matrix
  in
  comm_in_routines = induced

let totals_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"comm totals = induced first-reads" ~count:150
       ~print:Gen_trace.print
       (Gen_trace.gen
          ~params:{ Gen_trace.default_params with max_depth = 4 }
          ())
       totals_agree)

let suite =
  [
    Alcotest.test_case "fig1a matrix" `Quick test_fig1a_matrix;
    Alcotest.test_case "kernel edge" `Quick test_kernel_edge;
    Alcotest.test_case "producer->consumer routine edge" `Quick
      test_producer_consumer_routines;
    Alcotest.test_case "multi-pair cell" `Quick test_multi_pair_cell;
    totals_prop;
  ]
