(* End-to-end sweep over every registered workload at a small scale:
   the trace must be well-formed, the timestamping profiler must agree
   exactly with the naive oracle (a differential test on *real*
   program-shaped traces, not just random ones), Inequality 1 must hold,
   and the synchronization must be race-free under happens-before. *)

open Helpers
module Workload = Aprof_workloads.Workload
module Registry = Aprof_workloads.Registry

let small_scale spec =
  (* keep the naive-oracle runs affordable *)
  match spec.Workload.name with
  | "vips" -> 30
  | "dedup" -> 60
  | _ -> 80

let run_one spec =
  Workload.run_spec
    ~scheduler:(Aprof_vm.Scheduler.Random_preemptive { min_slice = 4; max_slice = 48 })
    spec ~threads:3 ~scale:(small_scale spec) ~seed:13

let test_well_formed_and_differential spec () =
  let result = run_one spec in
  let trace = result.Aprof_vm.Interp.trace in
  Alcotest.(check (list string)) "well-formed" [] (Trace.well_formed trace);
  let p1 = run_drms trace in
  let p2 = run_naive trace in
  check_profiles_equal "timestamping = naive" p1 p2;
  check_ops_equal "attribution agrees" p1 p2;
  (* Inequality 1 on every activation *)
  List.iter
    (fun k ->
      match Profile.data p1 k with
      | None -> ()
      | Some d ->
        Alcotest.(check bool) "drms >= rms" true
          (d.Profile.sum_drms >= d.Profile.sum_rms))
    (Profile.keys p1)

let test_race_free spec () =
  let result = run_one spec in
  let t = Aprof_tools.Helgrind_lite.create () in
  Aprof_util.Vec.iter (Aprof_tools.Helgrind_lite.on_event t) result.Aprof_vm.Interp.trace;
  Alcotest.(check (list string)) "race-free" []
    (List.map
       (fun r -> Format.asprintf "%a" Aprof_tools.Helgrind_lite.pp_race r)
       (Aprof_tools.Helgrind_lite.races t))

let suite =
  List.concat_map
    (fun spec ->
      let name = spec.Workload.name in
      [
        Alcotest.test_case (name ^ ": differential") `Slow
          (test_well_formed_and_differential spec);
        Alcotest.test_case (name ^ ": race-free") `Slow (test_race_free spec);
      ])
    Registry.all
