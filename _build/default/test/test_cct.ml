(* Calling-context-sensitive profiling: the same routine reached over two
   paths must get two separate context profiles. *)

open Aprof_vm.Program
module Cct = Aprof_core.Cct
module Profile = Aprof_core.Profile

let test_cct_interning () =
  let t = Cct.create () in
  let a = Cct.child t Cct.root 10 in
  let b = Cct.child t a 20 in
  let b' = Cct.child t a 20 in
  Alcotest.(check int) "interned" b b';
  Alcotest.(check int) "size" 3 (Cct.size t);
  Alcotest.(check (option int)) "parent" (Some a) (Cct.parent t b);
  Alcotest.(check (option int)) "root parent" None (Cct.parent t Cct.root);
  Alcotest.(check (list int)) "path" [ 10; 20 ] (Cct.path t b);
  Alcotest.check_raises "unknown node" (Invalid_argument "Cct: unknown node 9")
    (fun () -> ignore (Cct.parent t 9))

(* helper: reads [n] cells starting at [a] *)
let reader name a n = call name (Aprof_workloads.Blocks.read_sum a n >>= fun _ -> return ())

let test_context_separation () =
  (* copy_buf is called from io_path on 40 cells and from init_path on 4
     cells: flat profiles merge them, context profiles must not. *)
  let program =
    let* big = alloc 40 in
    let* small = alloc 4 in
    let* () = Aprof_workloads.Blocks.write_fill big 40 (fun i -> i) in
    let* () = Aprof_workloads.Blocks.write_fill small 4 (fun i -> i) in
    let* () = call "io_path" (reader "copy_buf" big 40) in
    call "init_path" (reader "copy_buf" small 4)
  in
  let result =
    Aprof_vm.Interp.run Aprof_vm.Interp.default_config [ program ]
  in
  let p = Aprof_core.Drms_profiler.create ~track_contexts:true () in
  Aprof_core.Drms_profiler.run p result.Aprof_vm.Interp.trace;
  let flat = Aprof_core.Drms_profiler.finish p in
  let tbl = result.Aprof_vm.Interp.routines in
  let copy_buf = Option.get (Aprof_trace.Routine_table.find tbl "copy_buf") in
  (* flat: one routine entry holding both activations *)
  let flat_d = List.assoc copy_buf (Profile.merge_threads flat) in
  Alcotest.(check int) "flat merges activations" 2 flat_d.Profile.activations;
  (* context-sensitive: two distinct nodes for copy_buf *)
  match Aprof_core.Drms_profiler.context_results p with
  | None -> Alcotest.fail "expected context results"
  | Some (tree, cprofile) ->
    let nodes =
      Profile.routines cprofile
      |> List.filter (fun n -> n <> Cct.root && Cct.routine tree n = copy_buf)
    in
    Alcotest.(check int) "two contexts" 2 (List.length nodes);
    let inputs =
      List.map
        (fun n ->
          let d = List.assoc n (Profile.merge_threads cprofile) in
          int_of_float d.Profile.sum_drms)
        nodes
      |> List.sort compare
    in
    Alcotest.(check (list int)) "per-context drms" [ 4; 40 ] inputs;
    (* the paths name the callers *)
    let paths =
      List.map
        (fun n ->
          Format.asprintf "%a"
            (Cct.pp_path (Aprof_trace.Routine_table.name tbl) tree)
            n)
        nodes
      |> List.sort compare
    in
    Alcotest.(check (list string)) "paths"
      [ "init_path -> copy_buf"; "io_path -> copy_buf" ]
      paths

let test_recursion_contexts () =
  (* recursive calls grow the context chain *)
  let rec down n =
    call "descend" (if n = 0 then return () else down (n - 1))
  in
  let result =
    Aprof_vm.Interp.run Aprof_vm.Interp.default_config [ down 3 ]
  in
  let p = Aprof_core.Drms_profiler.create ~track_contexts:true () in
  Aprof_core.Drms_profiler.run p result.Aprof_vm.Interp.trace;
  ignore (Aprof_core.Drms_profiler.finish p);
  match Aprof_core.Drms_profiler.context_results p with
  | None -> Alcotest.fail "expected context results"
  | Some (tree, cprofile) ->
    (* root + 4 nested descend nodes *)
    Alcotest.(check int) "chain interned" 5 (Cct.size tree);
    Alcotest.(check int) "one profile entry per depth" 4
      (List.length (Profile.routines cprofile))

let test_flat_profile_unchanged () =
  (* context tracking must not perturb the flat profile *)
  let result =
    Aprof_workloads.Workload.run
      (Aprof_workloads.Patterns.producer_consumer ~n:15)
      ~seed:3
  in
  let with_ctx = Aprof_core.Drms_profiler.create ~track_contexts:true () in
  let without = Aprof_core.Drms_profiler.create () in
  Aprof_core.Drms_profiler.run with_ctx result.Aprof_vm.Interp.trace;
  Aprof_core.Drms_profiler.run without result.Aprof_vm.Interp.trace;
  Helpers.check_profiles_equal "flat profiles equal"
    (Aprof_core.Drms_profiler.finish with_ctx)
    (Aprof_core.Drms_profiler.finish without)

let suite =
  [
    Alcotest.test_case "cct interning" `Quick test_cct_interning;
    Alcotest.test_case "context separation" `Quick test_context_separation;
    Alcotest.test_case "recursion contexts" `Quick test_recursion_contexts;
    Alcotest.test_case "flat profile unchanged" `Quick test_flat_profile_unchanged;
  ]
