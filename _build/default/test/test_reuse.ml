(* Address recycling: with the free-list allocator, a recycled block must
   behave exactly like fresh memory under every profiler. *)

open Aprof_vm.Program
module Interp = Aprof_vm.Interp

let run_reuse ?(reuse = true) threads =
  Interp.run
    { Interp.default_config with reuse_freed_memory = reuse; seed = 5 }
    threads

(* Allocate, touch, free, reallocate: the second allocation must land on
   the same addresses when reuse is on, and its reads must count as plain
   first-reads (not stale re-reads of the old block). *)
let test_recycled_block_is_fresh () =
  let addrs = ref [] in
  let prog =
    let* a = alloc 8 in
    let* () =
      call "first_user" (for_ 0 7 (fun i -> write (a + i) (100 + i)))
    in
    let* () = dealloc a 8 in
    let* b = alloc 8 in
    addrs := [ a; b ];
    call "second_user"
      (let* _s =
         fold_range 0 7 0 (fun i acc ->
             let* v = read (b + i) in
             return (acc + v))
       in
       return ())
  in
  let result = run_reuse [ prog ] in
  (match !addrs with
  | [ a; b ] -> Alcotest.(check int) "block recycled" a b
  | _ -> Alcotest.fail "expected two allocations");
  let p = Aprof_core.Drms_profiler.create () in
  Aprof_core.Drms_profiler.run p result.Interp.trace;
  let profile = Aprof_core.Drms_profiler.finish p in
  let rid =
    Option.get
      (Aprof_trace.Routine_table.find result.Interp.routines "second_user")
  in
  let d = List.assoc rid (Aprof_core.Profile.merge_threads profile) in
  (* all 8 reads are fresh input, none attributed to the dead block's
     writer *)
  Alcotest.(check int) "plain first-reads" 8 d.Aprof_core.Profile.first_read_ops;
  Alcotest.(check int) "no induced" 0
    (d.Aprof_core.Profile.induced_thread_ops
    + d.Aprof_core.Profile.induced_external_ops)

let test_no_reuse_gets_fresh_addresses () =
  let addrs = ref [] in
  let prog =
    let* a = alloc 8 in
    let* () = write a 1 in
    let* () = dealloc a 8 in
    let* b = alloc 8 in
    addrs := [ a; b ];
    return ()
  in
  let _ = run_reuse ~reuse:false [ prog ] in
  match !addrs with
  | [ a; b ] -> Alcotest.(check bool) "fresh addresses" true (a <> b)
  | _ -> Alcotest.fail "expected two allocations"

let test_first_fit_splits () =
  let addrs = ref [] in
  let prog =
    let* a = alloc 10 in
    let* () = dealloc a 10 in
    let* b = alloc 4 in
    (* takes the head of the freed block *)
    let* c = alloc 6 in
    (* takes the split remainder *)
    addrs := [ a; b; c ];
    return ()
  in
  let _ = run_reuse [ prog ] in
  match !addrs with
  | [ a; b; c ] ->
    Alcotest.(check int) "head reused" a b;
    Alcotest.(check int) "remainder reused" (a + 4) c
  | _ -> Alcotest.fail "expected three allocations"

let test_recycled_reads_zero () =
  let seen = ref (-1) in
  let prog =
    let* a = alloc 2 in
    let* () = write a 99 in
    let* () = dealloc a 2 in
    let* b = alloc 2 in
    let* v = read b in
    seen := v;
    return ()
  in
  let _ = run_reuse [ prog ] in
  Alcotest.(check int) "recycled memory reads zero" 0 !seen

let suite =
  [
    Alcotest.test_case "recycled block is fresh input" `Quick
      test_recycled_block_is_fresh;
    Alcotest.test_case "bump allocator never reuses" `Quick
      test_no_reuse_gets_fresh_addresses;
    Alcotest.test_case "first fit splits blocks" `Quick test_first_fit_splits;
    Alcotest.test_case "recycled memory reads zero" `Quick
      test_recycled_reads_zero;
  ]
