(* Behavioural tests of the application miniatures: the case-study
   effects of Section 2.1 must actually show up in the profiles. *)

open Helpers
module Workloads = Aprof_workloads
module Metrics = Aprof_core.Metrics

let merged_data profile routine =
  match List.assoc_opt routine (Profile.merge_threads profile) with
  | Some d -> d
  | None -> Alcotest.failf "no profile for routine %d" routine

(* Figure 4: mysql_select's drms tracks table size; its rms plateaus near
   the buffer-pool frame, so distinct drms values >> distinct rms values
   and the drms/cost relation is linear while rms/cost is not. *)
let test_mysql_select_sweep () =
  let row_counts = [ 40; 80; 120; 160; 200; 240; 280; 320 ] in
  let w = Workloads.Mysql_sim.select_sweep ~row_counts ~seed:3 in
  let result = run_workload w in
  Alcotest.(check (list string)) "well-formed" []
    (Trace.well_formed result.Aprof_vm.Interp.trace);
  let profile = run_drms result.Aprof_vm.Interp.trace in
  let tbl = result.Aprof_vm.Interp.routines in
  let d = merged_data profile (routine_id tbl "mysql_select") in
  let n_drms = Metrics.distinct_points ~metric:`Drms d in
  let n_rms = Metrics.distinct_points ~metric:`Rms d in
  Alcotest.(check int) "one drms point per table size" (List.length row_counts) n_drms;
  Alcotest.(check bool) "rms collapses sizes" true (n_rms < n_drms);
  (* drms grows with the table; rms spread is tiny compared to that. *)
  let inputs l = List.map (fun (p : Profile.point) -> p.Profile.input) l in
  let drms_inputs = inputs d.Profile.drms_points in
  let rms_inputs = inputs d.Profile.rms_points in
  let spread xs = List.fold_left max 0 xs - List.fold_left min max_int xs in
  Alcotest.(check bool) "drms spread dominates rms spread" true
    (spread drms_inputs > 4 * max 1 (spread rms_inputs));
  (* Fitting worst-case cost against drms must come out linear. *)
  match
    Aprof_core.Fit.best_fit
      (Aprof_core.Fit.points_of_profile ~metric:`Drms ~cost:`Max d)
  with
  | Some { model = Aprof_core.Fit.Linear; r_squared; _ } ->
    Alcotest.(check bool) "good linear fit" true (r_squared > 0.98)
  | Some { model; _ } ->
    Alcotest.failf "expected linear drms fit, got %s"
      (Aprof_core.Fit.model_name model)
  | None -> Alcotest.fail "no fit"

(* Figure 5: im_generate's drms tracks the image while its rms stays near
   the (reused) tile pool. *)
let test_vips_im_generate () =
  let heights = [ 32; 48; 64; 80 ] in
  let w = Workloads.Vips_sim.pipeline ~workers:3 ~heights ~seed:5 in
  let result = run_workload w in
  Alcotest.(check (list string)) "well-formed" []
    (Trace.well_formed result.Aprof_vm.Interp.trace);
  let profile = run_drms result.Aprof_vm.Interp.trace in
  let tbl = result.Aprof_vm.Interp.routines in
  let d = merged_data profile (routine_id tbl "im_generate") in
  Alcotest.(check int) "one point per image"
    (List.length heights)
    (Metrics.distinct_points ~metric:`Drms d);
  let drms_inputs = List.map (fun (p : Profile.point) -> p.Profile.input) d.Profile.drms_points in
  let rms_inputs = List.map (fun (p : Profile.point) -> p.Profile.input) d.Profile.rms_points in
  let spread xs = List.fold_left max 0 xs - List.fold_left min max_int xs in
  Alcotest.(check bool) "drms spread dominates" true
    (spread drms_inputs > 4 * max 1 (spread rms_inputs))

(* Figure 6: the writer's rms collapses onto two region sizes while the
   drms separates most calls. *)
let test_vips_wbuffer () =
  let heights = Workloads.Vips_sim.default_heights in
  let calls = Workloads.Vips_sim.region_calls ~heights in
  let w = Workloads.Vips_sim.pipeline ~workers:3 ~heights ~seed:11 in
  let result = run_workload w in
  let profile = run_drms result.Aprof_vm.Interp.trace in
  let tbl = result.Aprof_vm.Interp.routines in
  let d = merged_data profile (routine_id tbl "wbuffer_write_thread") in
  Alcotest.(check int) "activations" calls d.Profile.activations;
  let n_rms = Metrics.distinct_points ~metric:`Rms d in
  let n_drms = Metrics.distinct_points ~metric:`Drms d in
  Alcotest.(check int) "rms collapses to exactly two classes" 2 n_rms;
  Alcotest.(check bool) "drms separates most calls" true
    (n_drms > calls * 3 / 4);
  (* And the external-only variant sits strictly in between (Figure 6b). *)
  let p_ext =
    let pr = Aprof_core.Drms_profiler.create ~mode:`External_only () in
    Aprof_core.Drms_profiler.run pr result.Aprof_vm.Interp.trace;
    Aprof_core.Drms_profiler.finish pr
  in
  let d_ext = merged_data p_ext (routine_id tbl "wbuffer_write_thread") in
  let n_ext = Metrics.distinct_points ~metric:`Drms d_ext in
  Alcotest.(check bool) "external-only in between" true
    (n_ext > n_rms && n_ext <= n_drms)

(* Figure 13/15: MySQL's induced first-reads are external-dominant, the
   vips pipeline's are thread-dominant. *)
let test_induced_breakdown () =
  let mysql =
    run_workload
      (Workloads.Mysql_sim.mysqlslap ~clients:4 ~queries:6 ~rows:150 ~seed:7)
  in
  let vips =
    run_workload
      (Workloads.Vips_sim.pipeline ~workers:3 ~heights:[ 64; 96 ] ~seed:7)
  in
  let breakdown r =
    let profile = run_drms r.Aprof_vm.Interp.trace in
    match Metrics.suite_characterization profile with
    | Some (thread_pct, ext_pct) -> (thread_pct, ext_pct)
    | None -> Alcotest.fail "no induced first-reads at all"
  in
  let _, mysql_ext = breakdown mysql in
  let vips_thread, _ = breakdown vips in
  Alcotest.(check bool) "mysql externally dominated" true (mysql_ext > 50.);
  Alcotest.(check bool) "vips thread share substantial" true (vips_thread > 40.)

let suite =
  [
    Alcotest.test_case "mysql_select sweep (fig 4)" `Quick test_mysql_select_sweep;
    Alcotest.test_case "vips im_generate (fig 5)" `Quick test_vips_im_generate;
    Alcotest.test_case "vips wbuffer (fig 6)" `Quick test_vips_wbuffer;
    Alcotest.test_case "induced breakdown (fig 13/15)" `Quick
      test_induced_breakdown;
  ]
