(* The MySQL case study (Section 2.1): scan queries over tables of
   increasing size through a small buffer pool, then let the fitting
   module estimate the empirical cost function of mysql_select from each
   metric's performance points.

     dune exec examples/mysql_scaling.exe *)

module Fit = Aprof_core.Fit
module Profile = Aprof_core.Profile

let () =
  let row_counts = [ 100; 200; 400; 800; 1200; 1600 ] in
  let result =
    Aprof_workloads.Workload.run
      (Aprof_workloads.Mysql_sim.select_sweep ~row_counts ~seed:23)
      ~seed:23
  in
  let p = Aprof_core.Drms_profiler.create () in
  Aprof_core.Drms_profiler.run p result.Aprof_vm.Interp.trace;
  let profile = Aprof_core.Drms_profiler.finish p in
  let rid =
    Option.get
      (Aprof_trace.Routine_table.find result.Aprof_vm.Interp.routines
         "mysql_select")
  in
  let d = List.assoc rid (Profile.merge_threads profile) in

  Printf.printf "mysql_select: one activation per table size\n";
  Printf.printf "%10s %10s %12s\n" "rms" "drms" "cost(BB)";
  List.iter2
    (fun (r : Profile.point) (q : Profile.point) ->
      Printf.printf "%10d %10d %12d\n" r.Profile.input q.Profile.input
        q.Profile.max_cost)
    (List.concat_map
       (fun (pt : Profile.point) ->
         List.init pt.Profile.calls (fun _ -> pt))
       d.Profile.rms_points)
    d.Profile.drms_points;

  let report label points =
    match Fit.best_fit points with
    | Some r ->
      Printf.printf "%s: best model %s (R^2 = %.4f)\n" label
        (Fit.model_name r.Fit.model) r.Fit.r_squared
    | None -> Printf.printf "%s: not enough distinct points to fit\n" label
  in
  print_newline ();
  report "cost vs rms "
    (Fit.points_of_profile ~metric:`Rms ~cost:`Max d);
  report "cost vs drms"
    (Fit.points_of_profile ~metric:`Drms ~cost:`Max d);
  print_endline
    "\nThe rms points pile up at the buffer-pool size, so no meaningful cost";
  print_endline
    "function can be estimated from them; the drms points land on a clean";
  print_endline "line — the scan is linear in the tuples actually loaded."
