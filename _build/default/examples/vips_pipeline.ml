(* The vips case study (Figures 5 and 6): a threaded image pipeline with
   a background write-buffer thread, profiled under all three drms
   configurations.

     dune exec examples/vips_pipeline.exe *)

module Profile = Aprof_core.Profile
module Metrics = Aprof_core.Metrics

let () =
  let heights = Aprof_workloads.Vips_sim.default_heights in
  let result =
    Aprof_workloads.Workload.run
      (Aprof_workloads.Vips_sim.pipeline ~workers:3 ~heights ~seed:31)
      ~scheduler:(Aprof_vm.Scheduler.Random_preemptive { min_slice = 8; max_slice = 96 })
      ~seed:31
  in
  let trace = result.Aprof_vm.Interp.trace in
  let tbl = result.Aprof_vm.Interp.routines in
  let wbuffer = Option.get (Aprof_trace.Routine_table.find tbl "wbuffer_write_thread") in
  let profile_with mode =
    let p = Aprof_core.Drms_profiler.create ~mode () in
    Aprof_core.Drms_profiler.run p trace;
    List.assoc wbuffer
      (Profile.merge_threads (Aprof_core.Drms_profiler.finish p))
  in
  let full = profile_with `Both in
  let ext = profile_with `External_only in
  Printf.printf "wbuffer_write_thread across %d calls:\n" full.Profile.activations;
  Printf.printf "  distinct rms values:                 %d\n"
    (Metrics.distinct_points ~metric:`Rms full);
  Printf.printf "  distinct drms values (external only): %d\n"
    (Metrics.distinct_points ~metric:`Drms ext);
  Printf.printf "  distinct drms values (ext + thread):  %d\n"
    (Metrics.distinct_points ~metric:`Drms full);
  print_newline ();
  (match Metrics.induced_breakdown full with
  | Some (t, e) ->
    Printf.printf
      "its induced first-reads: %.0f%% from other threads, %.0f%% from the kernel\n"
      (100. *. t) (100. *. e)
  | None -> ());
  print_newline ();
  print_endline "worst-case cost plot against the full drms:";
  let chart =
    Aprof_plot.Ascii_plot.create ~title:"Cost plot (wbuffer_write_thread)"
      ~x_label:"DRMS" ~y_label:"cost (executed BB)" ()
  in
  Aprof_plot.Ascii_plot.add_series chart ~name:"calls" ~marker:'*'
    (List.map
       (fun (p : Profile.point) ->
         (float_of_int p.Profile.input, float_of_int p.Profile.max_cost))
       full.Profile.drms_points);
  print_string (Aprof_plot.Ascii_plot.render_string chart)
