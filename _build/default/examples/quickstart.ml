(* Quickstart: write a tiny concurrent program in the DSL, run it under
   the VM, profile the trace with the drms profiler, and read the result.

     dune exec examples/quickstart.exe *)

open Aprof_vm.Program

(* A worker sums the same array twice; the main thread refills it between
   the two rounds.  A classic input-sensitive profiler (rms) counts the
   array once — the second round re-reads known locations — but the
   refill is genuinely new input, and the drms sees both rounds. *)
let program ~n =
  let* data = alloc n in
  let* ready = sem_create 0 in
  let* consumed = sem_create 0 in
  let* worker =
    spawn
      (call "sum_array"
         (for_ 1 2 (fun _ ->
              let* () = sem_wait ready in
              let* total =
                fold_range 0 (n - 1) 0 (fun i acc ->
                    let* v = read (data + i) in
                    let* () = compute 1 in
                    return (acc + v))
              in
              let* () = compute (total land 1) in
              sem_post consumed)))
  in
  let* () =
    for_ 1 2 (fun round ->
        let* () =
          call "fill_array"
            (for_ 0 (n - 1) (fun i -> write (data + i) (round * i)))
        in
        let* () = sem_post ready in
        sem_wait consumed)
  in
  join worker

let () =
  let n = 100 in
  (* 1. execute the program, collecting the instrumentation trace *)
  let result =
    Aprof_vm.Interp.run
      { Aprof_vm.Interp.default_config with seed = 1 }
      [ program ~n ]
  in
  Printf.printf "trace: %d events\n" (Aprof_util.Vec.length result.trace);

  (* 2. profile the trace *)
  let profiler = Aprof_core.Drms_profiler.create () in
  Aprof_core.Drms_profiler.run profiler result.trace;
  let profile = Aprof_core.Drms_profiler.finish profiler in

  (* 3. inspect the sum_array routine *)
  let rid =
    Option.get (Aprof_trace.Routine_table.find result.routines "sum_array")
  in
  let data = List.assoc rid (Aprof_core.Profile.merge_threads profile) in
  List.iter
    (fun (p : Aprof_core.Profile.point) ->
      Printf.printf "sum_array: rms  = %3d  (the array, counted once)\n"
        p.Aprof_core.Profile.input)
    data.Aprof_core.Profile.rms_points;
  List.iter
    (fun (p : Aprof_core.Profile.point) ->
      Printf.printf
        "sum_array: drms = %3d  (both refills: its real dynamic workload), \
         cost = %d BB\n"
        p.Aprof_core.Profile.input p.Aprof_core.Profile.max_cost)
    data.Aprof_core.Profile.drms_points;
  match Aprof_core.Metrics.induced_breakdown data with
  | Some (thread, _) ->
    Printf.printf "induced first-reads from other threads: %.0f%%\n"
      (100. *. thread)
  | None -> ()
