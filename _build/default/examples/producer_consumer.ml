(* The paper's motivating pattern (Figure 2): a consumer whose whole
   workload arrives through one shared memory cell.  Sweeps the item
   count and prints how the two metrics see the consumer.

     dune exec examples/producer_consumer.exe *)

module Profile = Aprof_core.Profile

let profile_consumer ~n =
  let result =
    Aprof_workloads.Workload.run
      (Aprof_workloads.Patterns.producer_consumer ~n)
      ~seed:17
  in
  let p = Aprof_core.Drms_profiler.create () in
  Aprof_core.Drms_profiler.run p result.Aprof_vm.Interp.trace;
  let profile = Aprof_core.Drms_profiler.finish p in
  let rid =
    Option.get
      (Aprof_trace.Routine_table.find result.Aprof_vm.Interp.routines "consumer")
  in
  let d = List.assoc rid (Profile.merge_threads profile) in
  (int_of_float d.Profile.sum_rms, int_of_float d.Profile.sum_drms,
   int_of_float d.Profile.total_cost)

let () =
  print_endline "consumer routine under the two input-size metrics:";
  Printf.printf "%8s %8s %8s %10s\n" "items" "rms" "drms" "cost(BB)";
  List.iter
    (fun n ->
      let rms, drms, cost = profile_consumer ~n in
      Printf.printf "%8d %8d %8d %10d\n" n rms drms cost)
    [ 10; 20; 40; 80; 160; 320 ];
  print_endline
    "\nThe rms never moves: the consumer always re-reads the same cell.";
  print_endline
    "The drms counts each refill as induced input and tracks the workload,";
  print_endline "so only the drms/cost relation reveals the linear behaviour."
