examples/producer_consumer.mli:
