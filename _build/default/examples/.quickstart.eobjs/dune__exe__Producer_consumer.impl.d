examples/producer_consumer.ml: Aprof_core Aprof_trace Aprof_vm Aprof_workloads List Option Printf
