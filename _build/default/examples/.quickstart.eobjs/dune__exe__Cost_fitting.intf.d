examples/cost_fitting.mli:
