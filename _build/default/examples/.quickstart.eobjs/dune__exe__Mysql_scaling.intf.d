examples/mysql_scaling.mli:
