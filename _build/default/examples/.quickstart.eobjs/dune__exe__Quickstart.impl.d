examples/quickstart.ml: Aprof_core Aprof_trace Aprof_util Aprof_vm List Option Printf
