examples/vips_pipeline.mli:
