examples/quickstart.mli:
