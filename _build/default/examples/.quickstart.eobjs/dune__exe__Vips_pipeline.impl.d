examples/vips_pipeline.ml: Aprof_core Aprof_plot Aprof_trace Aprof_vm Aprof_workloads List Option Printf
