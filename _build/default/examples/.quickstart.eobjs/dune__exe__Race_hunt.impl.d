examples/race_hunt.ml: Aprof_tools Aprof_util Aprof_vm Format List Printf
