(* Estimating empirical cost functions of classic algorithms: run each
   sorting/searching kernel over a size sweep, collect its performance
   points, and let the fitting module name the asymptotic class.

     dune exec examples/cost_fitting.exe *)

module Fit = Aprof_core.Fit
module Profile = Aprof_core.Profile

let profile_point workload routine =
  let result = Aprof_workloads.Workload.run workload ~seed:41 in
  let p = Aprof_core.Drms_profiler.create () in
  Aprof_core.Drms_profiler.run p result.Aprof_vm.Interp.trace;
  let profile = Aprof_core.Drms_profiler.finish p in
  let rid =
    Option.get
      (Aprof_trace.Routine_table.find result.Aprof_vm.Interp.routines routine)
  in
  let d = List.assoc rid (Profile.merge_threads profile) in
  match Fit.points_of_profile ~metric:`Drms ~cost:`Max d with
  | [ (n, c) ] -> (n, c)
  | points ->
    (* several activations: take the largest input *)
    List.fold_left (fun (bn, bc) (n, c) -> if n > bn then (n, c) else (bn, bc))
      (0, 0.) points

let sizes = [ 32; 64; 128; 256; 512 ]

let sweep name make routine =
  let points = List.map (fun n -> profile_point (make ~n) routine) sizes in
  match (Fit.best_fit points, Fit.power_law points) with
  | Some r, Some (_, k, _) ->
    Printf.printf "%-16s %-12s (R^2 = %.4f, empirical exponent %.2f)\n" name
      (Fit.model_name r.Fit.model) r.Fit.r_squared k
  | _ -> Printf.printf "%-16s (not enough points)\n" name

let () =
  print_endline "estimated empirical cost functions (drms vs worst-case cost):";
  sweep "selection_sort"
    (fun ~n -> Aprof_workloads.Sorting.selection_sort_run ~n ~seed:1)
    "selection_sort";
  sweep "insertion_sort"
    (fun ~n -> Aprof_workloads.Sorting.insertion_sort_run ~n ~seed:1)
    "insertion_sort";
  sweep "merge_sort"
    (fun ~n -> Aprof_workloads.Sorting.merge_sort_run ~n ~seed:1)
    "merge_sort";

  (* Binary search illustrates what the metric measures: its drms is the
     number of cells it actually examines (log n), and its cost is linear
     in that consumed input.  Plotting cost against the *array size*
     instead recovers the textbook logarithm. *)
  let bs_points =
    List.map
      (fun n ->
        let drms, cost =
          profile_point
            (Aprof_workloads.Sorting.binary_search_run ~n ~lookups:1 ~seed:1)
            "binary_search"
        in
        (n, drms, cost))
      sizes
  in
  (match
     ( Fit.best_fit (List.map (fun (_, d, c) -> (d, c)) bs_points),
       Fit.best_fit (List.map (fun (n, _, c) -> (n, c)) bs_points) )
   with
  | Some vs_drms, Some vs_n ->
    Printf.printf "%-16s %-12s in its drms (cells examined)\n" "binary_search"
      (Fit.model_name vs_drms.Fit.model);
    Printf.printf "%-16s %-12s in the array size\n" "" (Fit.model_name vs_n.Fit.model)
  | _ -> ());
  print_endline
    "\n(the drms of binary_search is itself logarithmic: the metric counts the";
  print_endline " cells a routine actually consumes, not the structure it lives in)"
