(* Beyond profiling: the same trace feeds the whole tool suite.  Here the
   happens-before race detector checks a correct and a deliberately broken
   variant of a shared-counter program, and memcheck finds a leak.

     dune exec examples/race_hunt.exe *)

open Aprof_vm.Program

let counter_program ~locked =
  let* cell = alloc 1 in
  let* () = write cell 0 in
  let* m = Aprof_vm.Sync.Mutex.create () in
  let bump =
    let* v = read cell in
    let* () = compute 1 in
    write cell (v + 1)
  in
  let worker =
    for_ 1 25 (fun _ ->
        if locked then Aprof_vm.Sync.Mutex.with_lock m bump else bump)
  in
  let* a = spawn worker in
  let* b = spawn worker in
  let* () = join a in
  let* () = join b in
  (* leak on purpose: never deallocated *)
  let* _scratch = alloc 16 in
  return ()

let run_tools ~locked =
  let result =
    Aprof_vm.Interp.run
      {
        Aprof_vm.Interp.default_config with
        scheduler = Aprof_vm.Scheduler.Random_preemptive { min_slice = 1; max_slice = 4 };
        seed = 13;
      }
      [ counter_program ~locked ]
  in
  let hel = Aprof_tools.Helgrind_lite.create () in
  let mem = Aprof_tools.Memcheck_lite.create () in
  Aprof_util.Vec.iter
    (fun ev ->
      Aprof_tools.Helgrind_lite.on_event hel ev;
      Aprof_tools.Memcheck_lite.on_event mem ev)
    result.Aprof_vm.Interp.trace;
  (Aprof_tools.Helgrind_lite.races hel, Aprof_tools.Memcheck_lite.leaks mem)

let () =
  let races, leaks = run_tools ~locked:true in
  Printf.printf "with the mutex:    %d races, %d leaked blocks\n"
    (List.length races) (List.length leaks);
  let races, _ = run_tools ~locked:false in
  Printf.printf "without the mutex: %d races\n" (List.length races);
  List.iter
    (fun r -> Format.printf "  %a@." Aprof_tools.Helgrind_lite.pp_race r)
    races
