(* The aprof command-line front end.

   Subcommands:
     list                      registered workloads
     run <workload>            profile a workload, print routine profiles
     plot <workload> <routine> cost plots of one routine (rms and drms)
     tools <workload>          run every analysis tool, print summaries
     overhead <workload>       Table 1-style measurement on one workload
     trace <workload>          dump the raw event trace
     fit [<workload>] [<routine>]
                               estimate empirical cost functions
                               (penalized selection; --store writes a
                               model store for the regression watch)
     diff <old> <new>          compare two model stores and flag
                               cost-function regressions
     serve                     always-on ingest daemon: concurrent ATRC
                               streams, live sharded aggregation
     push <file>               stream a recorded trace to a daemon
     ctl <command>             control a daemon (ping/stats/snapshot/stop)
     fleet <profile>...        fleet cost-throughput CSV from saved
                               profiles (offline --fleet-csv twin) *)

open Cmdliner

let scheduler_of_string = function
  | "rr" -> Ok (Aprof_vm.Scheduler.Round_robin { slice = 64 })
  | "serialized" -> Ok Aprof_vm.Scheduler.Serialized
  | "random" ->
    Ok (Aprof_vm.Scheduler.Random_preemptive { min_slice = 8; max_slice = 96 })
  | "ws" | "work-stealing" ->
    Ok (Aprof_vm.Scheduler.Work_stealing { workers = 4; slice = 64 })
  | "async" ->
    Ok (Aprof_vm.Scheduler.Async_io { slice = 64; io_delay = 16 })
  | s ->
    Error
      (Printf.sprintf "unknown scheduler %S (rr|serialized|random|ws|async)" s)

(* ----- common options ------------------------------------------------ *)

let workload_arg =
  let doc = "Workload name (see $(b,aprof list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let routine_arg p =
  let doc = "Routine name within the workload." in
  Arg.(required & pos p (some string) None & info [] ~docv:"ROUTINE" ~doc)

let threads_term =
  let doc = "Number of worker threads." in
  Arg.(value & opt int 4 & info [ "j"; "threads" ] ~docv:"N" ~doc)

let scale_term =
  let doc = "Workload scale (input size)." in
  Arg.(value & opt int 400 & info [ "s"; "scale" ] ~docv:"N" ~doc)

let seed_term =
  let doc = "Random seed (runs are deterministic per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let scheduler_term =
  let doc =
    "Scheduler: $(b,rr), $(b,serialized), $(b,random), $(b,ws) \
     (work-stealing) or $(b,async) (event loop)."
  in
  let parse s =
    match scheduler_of_string s with Ok v -> Ok v | Error m -> Error (`Msg m)
  in
  let sched_conv =
    Arg.conv (parse, fun ppf _ -> Format.fprintf ppf "<scheduler>")
  in
  Arg.(
    value
    & opt sched_conv (Aprof_vm.Scheduler.Round_robin { slice = 64 })
    & info [ "scheduler" ] ~docv:"POLICY" ~doc)

let find_spec name =
  match Aprof_workloads.Registry.find name with
  | Some spec -> spec
  | None ->
    Printf.eprintf "unknown workload %S; try `aprof list'\n" name;
    exit 2

let execute name threads scale seed scheduler =
  let spec = find_spec name in
  Aprof_workloads.Workload.run_spec ~scheduler spec ~threads ~scale ~seed

let profile_of result =
  let p = Aprof_core.Drms_profiler.create () in
  Aprof_core.Drms_profiler.run p result.Aprof_vm.Interp.trace;
  Aprof_core.Drms_profiler.finish p

let run_meta name threads scale seed scheduler =
  {
    Aprof_analysis.Run_meta.workload = name;
    seed;
    scale;
    threads;
    scheduler = Aprof_vm.Scheduler.policy_name scheduler;
  }

(* ----- list ----------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun s ->
        Printf.printf "%-20s %-8s %s\n" s.Aprof_workloads.Workload.name
          (Aprof_workloads.Workload.suite_name s.Aprof_workloads.Workload.suite)
          s.Aprof_workloads.Workload.description)
      Aprof_workloads.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List registered workloads")
    Term.(const run $ const ())

(* ----- run ------------------------------------------------------------ *)

let run_cmd =
  let run name threads scale seed scheduler output =
    let result = execute name threads scale seed scheduler in
    let profile = profile_of result in
    let tbl = result.Aprof_vm.Interp.routines in
    (match output with
    | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Aprof_core.Profile_io.save oc
            ~routine_name:(Aprof_trace.Routine_table.name tbl)
            ~meta:(run_meta name threads scale seed scheduler)
            profile);
      Printf.printf "profile written to %s\n" path
    | None ->
      Format.printf "%a@."
        (Aprof_core.Profile.pp (Aprof_trace.Routine_table.name tbl))
        profile);
    Format.printf "dynamic input volume: %.3f@."
      (Aprof_core.Metrics.dynamic_input_volume profile);
    match Aprof_core.Metrics.suite_characterization profile with
    | Some (t, e) ->
      Format.printf "induced first-reads: %.1f%% thread, %.1f%% external@." t e
    | None -> Format.printf "no induced first-reads observed@."
  in
  let output_term =
    let doc = "Write the profile as CSV to $(docv) instead of printing it." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Profile a workload with the drms profiler")
    Term.(
      const run $ workload_arg $ threads_term $ scale_term $ seed_term
      $ scheduler_term $ output_term)

let report_cmd =
  let run path =
    match In_channel.with_open_text path Aprof_core.Profile_io.load with
    | Error e ->
      Printf.eprintf "cannot load %s: %s\n" path e;
      exit 2
    | Ok (profile, names) ->
      let name id =
        match List.assoc_opt id names with
        | Some n -> n
        | None -> Printf.sprintf "routine_%d" id
      in
      print_string
        (Aprof_core.Profile_io.render_report ~routine_name:name profile)
  in
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Profile CSV written by $(b,aprof run -o).")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Render a previously saved profile")
    Term.(const run $ path_arg)

(* ----- plot ----------------------------------------------------------- *)

let plot_cmd =
  let run name routine threads scale seed scheduler =
    let result = execute name threads scale seed scheduler in
    let profile = profile_of result in
    let tbl = result.Aprof_vm.Interp.routines in
    match Aprof_trace.Routine_table.find tbl routine with
    | None ->
      Printf.eprintf "routine %S not found; routines: " routine;
      Aprof_trace.Routine_table.iter (fun _ n -> Printf.eprintf "%s " n) tbl;
      prerr_newline ();
      exit 2
    | Some rid -> (
      match List.assoc_opt rid (Aprof_core.Profile.merge_threads profile) with
      | None ->
        Printf.eprintf "no completed activations of %S\n" routine;
        exit 2
      | Some d ->
        let plot metric pts =
          let chart =
            Aprof_plot.Ascii_plot.create
              ~title:(Printf.sprintf "Cost plot (%s) vs %s" routine metric)
              ~x_label:metric ~y_label:"cost (executed BB)" ()
          in
          Aprof_plot.Ascii_plot.add_series chart ~name:"worst-case cost"
            ~marker:'*'
            (List.map (fun (n, c) -> (float_of_int n, c)) pts);
          print_string (Aprof_plot.Ascii_plot.render_string chart)
        in
        plot "RMS" (Aprof_core.Fit.points_of_profile ~metric:`Rms ~cost:`Max d);
        plot "DRMS" (Aprof_core.Fit.points_of_profile ~metric:`Drms ~cost:`Max d))
  in
  Cmd.v
    (Cmd.info "plot" ~doc:"Draw rms and drms cost plots for one routine")
    Term.(
      const run $ workload_arg $ routine_arg 1 $ threads_term $ scale_term
      $ seed_term $ scheduler_term)

(* ----- fit ------------------------------------------------------------ *)

let fit_cmd =
  let module Select = Aprof_analysis.Fit_select in
  let module Solve = Aprof_analysis.Fit_solve in
  let module Basis = Aprof_analysis.Fit_basis in
  let module Store = Aprof_analysis.Model_store in
  (* Detailed view of one routine: the legacy r^2 table next to the
     penalized ranking, so the two selectors can be compared by eye. *)
  let print_routine ~bootstrap ~seed routine d =
    let points = Aprof_core.Fit.points_of_profile ~metric:`Drms ~cost:`Max d in
    Printf.printf "%s: %d performance points (drms, worst-case cost)\n" routine
      (List.length points);
    (match Select.select ~bootstrap ~seed points with
    | None -> Printf.printf "  not enough distinct input sizes to fit\n"
    | Some sel ->
      Printf.printf "  penalized selection (AICc), bootstrap confidence %.2f:\n"
        sel.Select.confidence;
      List.iter
        (fun ((f : Solve.fit), score) ->
          Printf.printf "    %-14s AICc = %8.2f  R^2 = %.4f%s\n"
            (Basis.name f.Solve.cls) score f.Solve.r2
            (if f.Solve.cls = sel.Select.best.Solve.cls then "  <- best" else ""))
        sel.Select.ranking;
      match sel.Select.exponent with
      | Some (k, lo, hi) ->
        Printf.printf "  power-law exponent: %.2f (95%% CI %.2f..%.2f)\n" k lo hi
      | None -> ());
    Printf.printf "  legacy r^2 ranking (a + b * g(n)):\n";
    List.iter
      (fun r ->
        Printf.printf "    %-12s R^2 = %.4f  (cost ~ %.3g + %.3g * g(n))\n"
          (Aprof_core.Fit.model_name r.Aprof_core.Fit.model)
          r.Aprof_core.Fit.r_squared r.Aprof_core.Fit.a r.Aprof_core.Fit.b)
      (Aprof_core.Fit.fit_models points);
    match Aprof_core.Fit.power_law points with
    | Some (c, k, r2) ->
      Printf.printf "    power law: cost ~ %.3g * n^%.2f (R^2 = %.4f)\n" c k r2
    | None -> ()
  in
  let run name routine threads scale seed scheduler profile_path store_path
      bootstrap =
    let profile, routine_name, meta =
      match (name, profile_path) with
      | Some _, Some _ ->
        Printf.eprintf "give either a WORKLOAD to run or --profile, not both\n";
        exit 2
      | None, None ->
        Printf.eprintf "nothing to fit: give a WORKLOAD or --profile FILE\n";
        exit 2
      | None, Some path -> (
        match In_channel.with_open_text path Aprof_core.Profile_io.load_meta with
        | Error e ->
          Printf.eprintf "cannot load %s: %s\n" path e;
          exit 2
        | Ok (profile, names, meta) ->
          let routine_name id =
            match List.assoc_opt id names with
            | Some n -> n
            | None -> Printf.sprintf "routine_%d" id
          in
          (profile, routine_name, meta))
      | Some name, None ->
        let result = execute name threads scale seed scheduler in
        let tbl = result.Aprof_vm.Interp.routines in
        ( profile_of result,
          Aprof_trace.Routine_table.name tbl,
          Some (run_meta name threads scale seed scheduler) )
    in
    let entries = Aprof_core.Fit.analyze ~bootstrap ~seed ~routine_name profile in
    (match routine with
    | Some routine -> (
      match
        List.find_opt
          (fun (rid, _) -> routine_name rid = routine)
          (Aprof_core.Profile.merge_threads profile)
      with
      | None ->
        Printf.eprintf "routine %S not found or has no activations\n" routine;
        exit 2
      | Some (_, d) -> print_routine ~bootstrap ~seed routine d)
    | None ->
      Printf.printf "%-28s %-5s %-14s %8s %6s %10s\n" "routine" "metric"
        "class" "R^2" "conf" "exponent";
      List.iter
        (fun (e : Store.entry) ->
          Printf.printf "%-28s %-5s %-14s %8.4f %6.2f %10s\n" e.Store.routine
            (Store.metric_name e.Store.metric)
            (Basis.name e.Store.cls) e.Store.r2 e.Store.confidence
            (match e.Store.exponent with
            | Some (k, _, _) -> Printf.sprintf "n^%.2f" k
            | None -> "-"))
        entries);
    match store_path with
    | None -> ()
    | Some path ->
      let store = Store.create ?meta entries in
      Out_channel.with_open_text path (fun oc -> Store.save oc store);
      Printf.printf "%d fitted models written to %s\n" (List.length entries)
        path
  in
  let workload_opt_arg =
    let doc =
      "Workload to run and fit (see $(b,aprof list)).  Omit it when \
       fitting a saved profile with $(b,--profile)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)
  in
  let routine_opt_arg =
    let doc =
      "Show the detailed fit of one routine instead of the summary table."
    in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"ROUTINE" ~doc)
  in
  let profile_term =
    let doc =
      "Fit a profile CSV written by $(b,aprof run -o) instead of running a \
       workload.  Run metadata saved in the profile is carried into \
       $(b,--store)."
    in
    Arg.(
      value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)
  in
  let store_term =
    let doc =
      "Write the fitted models (with run metadata) to $(docv), for \
       $(b,aprof diff)."
    in
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"FILE" ~doc)
  in
  let bootstrap_term =
    let doc =
      "Bootstrap resamples behind the class-confidence and exponent \
       intervals (0 disables the bootstrap)."
    in
    Arg.(value & opt int 120 & info [ "bootstrap" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "fit"
       ~doc:
         "Estimate empirical cost functions (penalized model selection over \
          drms points)")
    Term.(
      const run $ workload_opt_arg $ routine_opt_arg $ threads_term
      $ scale_term $ seed_term $ scheduler_term $ profile_term $ store_term
      $ bootstrap_term)

(* ----- diff ------------------------------------------------------------ *)

let diff_cmd =
  let module Store = Aprof_analysis.Model_store in
  let module Diff = Aprof_analysis.Cost_diff in
  let load_store path =
    match In_channel.with_open_text path Store.load with
    | Ok s -> s
    | Error e ->
      Printf.eprintf "cannot load %s: %s\n" path e;
      exit 2
    | exception Sys_error msg ->
      Printf.eprintf "cannot load %s: %s\n" path msg;
      exit 2
  in
  let run old_path new_path json fail_on_regression min_confidence slope_ratio
      ignore_meta =
    let old_store = load_store old_path in
    let new_store = load_store new_path in
    match
      Diff.diff ~min_confidence ~slope_ratio ~require_meta:(not ignore_meta)
        old_store new_store
    with
    | Error e ->
      Printf.eprintf "%s\n" e;
      exit 2
    | Ok report ->
      print_string (Diff.render report);
      (match json with
      | Some path ->
        Out_channel.with_open_text path (fun oc ->
            output_string oc (Diff.to_json report))
      | None -> ());
      if fail_on_regression && Diff.has_regression report then exit 1
  in
  let old_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"OLD" ~doc:"Baseline model store ($(b,aprof fit --store)).")
  in
  let new_arg =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"Candidate model store to compare.")
  in
  let json_term =
    let doc = "Write a machine-readable diff summary to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let fail_term =
    let doc =
      "Exit 1 when any confirmed regression is found (class moved up the \
       complexity ladder with confidence, leading coefficient blew past the \
       slope gate, or an rms/drms divergence appeared)."
    in
    Arg.(value & flag & info [ "fail-on-regression" ] ~doc)
  in
  let min_confidence_term =
    let doc =
      "Bootstrap confidence both runs must reach before a class change is \
       called a regression (below it, the change is reported as info)."
    in
    Arg.(value & opt float 0.7 & info [ "min-confidence" ] ~docv:"X" ~doc)
  in
  let slope_ratio_term =
    let doc =
      "Leading-coefficient ratio treated as a constant-factor regression \
       (and its reciprocal as an improvement)."
    in
    Arg.(value & opt float 2.0 & info [ "slope-ratio" ] ~docv:"X" ~doc)
  in
  let ignore_meta_term =
    let doc =
      "Compare the stores even when run metadata is missing or differs \
       (workload, scale, threads, scheduler).  Off by default: comparing \
       different setups produces meaningless verdicts."
    in
    Arg.(value & flag & info [ "ignore-meta" ] ~doc)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two fitted-model stores and flag cost-function regressions \
          (exit 0 clean, 1 regression with $(b,--fail-on-regression), 2 \
          incomparable)")
    Term.(
      const run $ old_arg $ new_arg $ json_term $ fail_term
      $ min_confidence_term $ slope_ratio_term $ ignore_meta_term)

(* ----- tools ----------------------------------------------------------- *)

let tools_cmd =
  let run name threads scale seed scheduler =
    let result = execute name threads scale seed scheduler in
    List.iter
      (fun f ->
        (* The race detector reports per-race lines, not just a summary:
           print its full report (the golden test pins this rendering). *)
        if f.Aprof_tools.Tool.tool_name = "helgrind" then begin
          let h = Aprof_tools.Helgrind_lite.create () in
          Aprof_util.Vec.iter
            (Aprof_tools.Helgrind_lite.on_event h)
            result.Aprof_vm.Interp.trace;
          print_string (Aprof_tools.Helgrind_lite.render_report h)
        end
        else begin
          let tool = f.Aprof_tools.Tool.create () in
          Aprof_tools.Tool.replay tool result.Aprof_vm.Interp.trace;
          Printf.printf "%s\n" (tool.Aprof_tools.Tool.summary ())
        end)
      (Aprof_tools.Harness.standard_factories ())
  in
  Cmd.v
    (Cmd.info "tools" ~doc:"Run every analysis tool over one workload's trace")
    Term.(
      const run $ workload_arg $ threads_term $ scale_term $ seed_term
      $ scheduler_term)

(* ----- overhead -------------------------------------------------------- *)

let overhead_cmd =
  let run name threads scale seed scheduler =
    let result = execute name threads scale seed scheduler in
    let measurements =
      Aprof_tools.Harness.measure ~trace:result.Aprof_vm.Interp.trace
        ~program_words:result.Aprof_vm.Interp.memory_high_water
        (Aprof_tools.Harness.standard_factories ())
    in
    List.iter
      (fun m -> Format.printf "%a@." Aprof_tools.Harness.pp_measurement m)
      measurements
  in
  Cmd.v
    (Cmd.info "overhead"
       ~doc:"Measure slowdown and space of every tool on one workload")
    Term.(
      const run $ workload_arg $ threads_term $ scale_term $ seed_term
      $ scheduler_term)

(* ----- comm ------------------------------------------------------------ *)

let comm_cmd =
  let run name threads scale seed scheduler =
    let result = execute name threads scale seed scheduler in
    let c = Aprof_core.Comm_profiler.create () in
    Aprof_core.Comm_profiler.run c result.Aprof_vm.Interp.trace;
    let tbl = result.Aprof_vm.Interp.routines in
    Format.printf "%a@."
      (Aprof_core.Comm_profiler.pp
         ~routine_name:(Aprof_trace.Routine_table.name tbl))
      (Aprof_core.Comm_profiler.report c)
  in
  Cmd.v
    (Cmd.info "comm"
       ~doc:
         "Characterize shared-memory communication: which threads and           routines feed values to which")
    Term.(
      const run $ workload_arg $ threads_term $ scale_term $ seed_term
      $ scheduler_term)

(* ----- contexts --------------------------------------------------------- *)

let contexts_cmd =
  let run name threads scale seed scheduler top =
    let result = execute name threads scale seed scheduler in
    let p = Aprof_core.Drms_profiler.create ~track_contexts:true () in
    Aprof_core.Drms_profiler.run p result.Aprof_vm.Interp.trace;
    ignore (Aprof_core.Drms_profiler.finish p);
    match Aprof_core.Drms_profiler.context_results p with
    | None -> assert false
    | Some (tree, cprofile) ->
      let tbl = result.Aprof_vm.Interp.routines in
      let rows =
        Aprof_core.Profile.merge_threads cprofile
        |> List.filter (fun (n, _) -> n <> Aprof_core.Cct.root)
        |> List.sort (fun (_, a) (_, b) ->
               compare b.Aprof_core.Profile.total_cost
                 a.Aprof_core.Profile.total_cost)
      in
      let rows = List.filteri (fun i _ -> i < top) rows in
      Format.printf "%-12s %-12s %-10s %s@." "activations" "sum drms"
        "cost" "calling context";
      List.iter
        (fun (node, (d : Aprof_core.Profile.routine_data)) ->
          Format.printf "%-12d %-12.0f %-10.0f %a@."
            d.Aprof_core.Profile.activations d.Aprof_core.Profile.sum_drms
            d.Aprof_core.Profile.total_cost
            (Aprof_core.Cct.pp_path (Aprof_trace.Routine_table.name tbl) tree)
            node)
        rows
  in
  let top_term =
    let doc = "Show the $(docv) most expensive contexts." in
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "contexts"
       ~doc:"Context-sensitive drms profile: input sizes per call path")
    Term.(
      const run $ workload_arg $ threads_term $ scale_term $ seed_term
      $ scheduler_term $ top_term)

(* ----- record / replay -------------------------------------------------- *)

module Stream = Aprof_trace.Trace_stream
module Codec = Aprof_trace.Trace_codec
module Batch = Aprof_trace.Event.Batch

(* Throughput is a diagnostic, not part of the profile: keep it off
   stdout so replays of the same run stay byte-diffable across formats. *)
let rate_line verb events seconds =
  let rate =
    if seconds > 0. then float_of_int events /. seconds /. 1e6 else 0.
  in
  Printf.eprintf "%s %d events in %.2f s (%.2fM events/s)\n" verb events
    seconds rate

(* Wall clock, not [Sys.time]: parallel replay spreads the work over
   domains, where process CPU time overstates elapsed time — and a rate
   is events per elapsed second. *)
let now () = Unix.gettimeofday ()

let record_cmd =
  let run name threads scale seed scheduler output format trace_format entropy =
    let spec = find_spec name in
    let w = spec.Aprof_workloads.Workload.make ~threads ~scale ~seed in
    let t0 = now () in
    let events, bytes =
      try
        Out_channel.with_open_bin output (fun oc ->
          (* The sink is created once the interpreter hands us its routine
             table, so the binary writer can embed names as they are
             interned; recorded traces never live in memory.  The binary
             format goes through the packed hot path: the interpreter's
             recycled batch is encoded directly, with no per-event
             variant or closure. *)
          let result =
            match format with
            | `Binary ->
              let sink = ref Stream.batch_null_sink in
              let result =
                Aprof_workloads.Workload.run_batched ~scheduler w ~seed
                  ~tool:(fun routines ->
                    let s =
                      Codec.batch_writer ~format_version:trace_format ~entropy
                        ~routine_name:(Aprof_trace.Routine_table.name routines)
                        oc
                    in
                    sink := s;
                    s.Stream.emit_batch)
              in
              (!sink).Stream.close_batch ();
              result
            | `Text ->
              let sink = ref Stream.null_sink in
              let result =
                Aprof_workloads.Workload.run_instrumented ~scheduler w ~seed
                  ~tool:(fun _ ->
                    let s = Stream.text_sink oc in
                    sink := s;
                    s.Stream.emit)
              in
              (!sink).Stream.close ();
              result
          in
          (result.Aprof_vm.Interp.events_emitted, Out_channel.pos oc))
      with Sys_error msg ->
        Printf.eprintf "cannot record to %s: %s\n" output msg;
        exit 2
    in
    Printf.printf "recorded %d events (%Ld bytes, %s) to %s\n" events bytes
      (match format with `Binary -> "binary" | `Text -> "text")
      output;
    rate_line "recorded" events (now () -. t0)
  in
  let output_term =
    let doc = "Trace file to write." in
    Arg.(
      required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let format_term =
    let doc = "Trace encoding: $(b,binary) (compact varint) or $(b,text)." in
    Arg.(
      value
      & opt (enum [ ("binary", `Binary); ("text", `Text) ]) `Binary
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let trace_format_term =
    let doc =
      "Binary trace format version to write: $(b,1) (bare records), $(b,2) \
       (checksummed chunk frames, the default), or $(b,3) \
       (redundancy-suppressed chunks: delta/pattern packed).  Ignored \
       with $(b,--format text)."
    in
    Arg.(
      value
      & opt (enum [ ("1", 1); ("2", 2); ("3", 3) ]) Codec.version
      & info [ "trace-format" ] ~docv:"V" ~doc)
  in
  let entropy_term =
    let doc =
      "With $(b,--trace-format 3), entropy-code each chunk (canonical \
       Huffman): roughly half the bytes again, at some decode-speed cost. \
       Meant for archival traces rather than replay working sets."
    in
    Arg.(value & flag & info [ "entropy" ] ~doc)
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Execute a workload and stream its event trace to a file without \
          materializing it")
    Term.(
      const run $ workload_arg $ threads_term $ scale_term $ seed_term
      $ scheduler_term $ output_term $ format_term $ trace_format_term
      $ entropy_term)

(* JSON output is hand-rolled — a flat summary object, no dependency. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let replay_json (result : Aprof_tools.Replay_driver.t) =
  let buf = Buffer.create 1024 in
  let file (r : Aprof_tools.Replay_driver.file_report) =
    let status =
      match (r.error, r.drops) with
      | Some _, _ -> "failed"
      | None, _ :: _ -> "salvaged"
      | None, [] -> "ok"
    in
    Printf.bprintf buf
      "    {\"path\": \"%s\", \"format\": \"%s\", \"status\": \"%s\", \
       \"events\": %d"
      (json_escape r.path) (json_escape r.format) status r.events;
    (match r.error with
    | Some e -> Printf.bprintf buf ", \"error\": \"%s\"" (json_escape e)
    | None -> ());
    Printf.bprintf buf ", \"drops\": [";
    List.iteri
      (fun i (d : Codec.drop) ->
        if i > 0 then Buffer.add_string buf ", ";
        Printf.bprintf buf
          "{\"chunk\": %d, \"offset\": %d, \"bytes\": %d, \"events\": %d, \
           \"reason\": \"%s\"}"
          d.Codec.drop_chunk d.Codec.drop_offset d.Codec.drop_bytes
          d.Codec.drop_events
          (json_escape d.Codec.drop_reason))
      r.drops;
    Buffer.add_string buf "]}"
  in
  Printf.bprintf buf "{\n  \"events\": %d,\n  \"failed\": %b,\n  \"files\": [\n"
    result.Aprof_tools.Replay_driver.events
    result.Aprof_tools.Replay_driver.failed;
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      file r)
    result.Aprof_tools.Replay_driver.files;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let replay_cmd =
  let run paths profiler with_tools jobs keep_going json =
    (* Streams are single-use: every consumer re-opens the file and decodes
       incrementally, so replay memory stays bounded by the I/O chunk.
       Binary traces decode and dispatch a packed batch at a time — the
       allocation-free path; the text format goes through the per-event
       decoder lifted into batches.

       With [-j N], a single binary trace replays through the
       work-stealing engine ({!Aprof_tools.Tool.replay_parallel}): the
       chunk index partitions the trace's threads over up to N shards,
       workers claim chunks from per-worker steal-half deques, and the
       shard states merge at the join.  Every profiler — drms, rms and
       naive — shards this way; of the tools only helgrind keeps a
       sequential replay (its lockset analysis needs the interleaved
       global order).  Several trace files parallelize across files
       instead, merging the resulting profiles.  Text traces and
       index-less files also fall back to sequential replay.

       The actual replay lives in {!Aprof_tools.Replay_driver}; this
       command only routes its buffered output: profile report and tool
       summaries to stdout, rates / drop reports / errors to stderr,
       and the machine-readable summary to [--json]. *)
    if jobs < 1 then begin
      Printf.eprintf "invalid job count %d\n" jobs;
      exit 2
    end;
    let result =
      Aprof_tools.Replay_driver.replay ~jobs ~profiler ~with_tools ~keep_going
        ~now paths
    in
    let name_of id =
      match Hashtbl.find_opt result.Aprof_tools.Replay_driver.names id with
      | Some n -> n
      | None -> Printf.sprintf "routine_%d" id
    in
    (* Diagnostics first, on stderr: what salvage dropped, what failed. *)
    List.iter
      (fun (r : Aprof_tools.Replay_driver.file_report) ->
        List.iter
          (fun (d : Codec.drop) ->
            Printf.eprintf "salvage: %s: dropped chunk %s (offset %d%s): %s\n"
              r.path
              (if d.Codec.drop_chunk < 0 then "?"
               else string_of_int d.Codec.drop_chunk)
              d.Codec.drop_offset
              (if d.Codec.drop_events < 0 then ""
               else Printf.sprintf ", ~%d events" d.Codec.drop_events)
              d.Codec.drop_reason)
          r.drops;
        match r.error with
        | Some msg -> Printf.eprintf "cannot replay %s: %s\n" r.path msg
        | None -> ())
      result.Aprof_tools.Replay_driver.files;
    (* The profile report covers the files that decoded; nothing is
       printed for a file that failed mid-replay, so a truncated input
       can never masquerade as a complete report. *)
    let any_ok =
      List.exists
        (fun (r : Aprof_tools.Replay_driver.file_report) -> r.error = None)
        result.Aprof_tools.Replay_driver.files
    in
    if any_ok then begin
      print_string
        (Aprof_core.Profile_io.render_report ~routine_name:name_of
           result.Aprof_tools.Replay_driver.profile);
      rate_line "replayed" result.Aprof_tools.Replay_driver.events
        result.Aprof_tools.Replay_driver.seconds;
      List.iter
        (fun (r : Aprof_tools.Replay_driver.file_report) ->
          List.iter
            (fun (t : Aprof_tools.Replay_driver.tool_run) ->
              Printf.printf "%s\n" t.summary;
              rate_line "replayed" t.tool_events t.tool_seconds)
            r.tool_runs)
        result.Aprof_tools.Replay_driver.files
    end;
    (match json with
    | Some path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc (replay_json result))
    | None -> ());
    if result.Aprof_tools.Replay_driver.failed then exit 2
  in
  let paths_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "Trace file(s) written by $(b,aprof record) (binary or text; the \
             format is auto-detected).  With several files, each replays \
             through its own profiler instance in parallel and the profiles \
             are merged.")
  in
  let profiler_term =
    let doc =
      "Profiler to replay into: $(b,drms), $(b,rms) or $(b,naive)."
    in
    Arg.(
      value
      & opt (enum [ ("drms", `Drms); ("rms", `Rms); ("naive", `Naive) ]) `Drms
      & info [ "profiler" ] ~docv:"P" ~doc)
  in
  let tools_term =
    let doc = "Additionally replay the trace through every standard tool." in
    Arg.(value & flag & info [ "tools" ] ~doc)
  in
  let jobs_term =
    let doc =
      "Replay with $(docv) parallel workers.  A binary trace's chunk \
       index partitions its threads over the workers, which rebalance by \
       stealing chunks; every profiler (drms, rms, naive) and every \
       standard tool except helgrind shards this way, with results \
       identical to $(b,-j 1).  Text traces replay sequentially."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let keep_going_term =
    let doc =
      "Salvage damaged binary traces instead of failing them: corrupt or \
       truncated chunks are skipped (re-synchronizing at the next chunk \
       boundary via the shard index or the v2 frame lengths) and each \
       dropped region is reported on stderr as $(b,salvage: FILE: dropped \
       chunk N (offset B, ~K events): REASON) and in the $(b,--json) \
       summary.  Files stay isolated either way: a failure in one never \
       aborts the others, and any failed file makes the exit status \
       nonzero."
    in
    Arg.(value & flag & info [ "k"; "keep-going" ] ~doc)
  in
  let json_term =
    let doc =
      "Write a machine-readable replay summary to $(docv): total events, \
       overall failure flag, and per file its detected format (text, \
       binary-v1/v2/v3, or unknown), status (ok/salvaged/failed), event \
       count, error, and dropped regions (chunk ordinal, byte offset, \
       payload bytes, event count, reason; -1 marks an unknown field)."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Stream recorded trace file(s) through a profiler (and tools)")
    Term.(
      const run $ paths_arg $ profiler_term $ tools_term $ jobs_term
      $ keep_going_term $ json_term)

(* ----- merge ----------------------------------------------------------- *)

let merge_cmd =
  (* Inputs stream through one at a time — each dump is loaded, folded
     into the accumulator with [merge_into], and released, so memory
     stays bounded by the largest single input, not the sum.  A file
     that fails to load is reported and skipped; the merge of the rest
     still comes out, and the failures make the exit status 2 at the
     end (mirroring replay's per-file isolation). *)
  let run output inputs =
    let profile = Aprof_core.Profile.create () in
    let names = Hashtbl.create 64 in
    let failures = ref [] in
    let merged = ref 0 in
    List.iter
      (fun path ->
        match In_channel.with_open_text path Aprof_core.Profile_io.load with
        | Ok (p, ns) ->
          Aprof_core.Profile.merge_into ~into:profile p;
          List.iter
            (fun (id, n) ->
              if not (Hashtbl.mem names id) then Hashtbl.add names id n)
            ns;
          incr merged
        | Error e -> failures := (path, e) :: !failures
        | exception Sys_error msg -> failures := (path, msg) :: !failures)
      inputs;
    let routine_name id =
      match Hashtbl.find_opt names id with
      | Some n -> n
      | None -> Printf.sprintf "routine_%d" id
    in
    (match output with
    | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Aprof_core.Profile_io.save oc ~routine_name profile);
      Printf.printf "merged %d of %d profiles into %s\n" !merged
        (List.length inputs) path
    | None ->
      print_string
        (Aprof_core.Profile_io.render_report ~routine_name profile));
    match List.rev !failures with
    | [] -> ()
    | fs ->
      List.iter
        (fun (path, e) -> Printf.eprintf "cannot load %s: %s\n" path e)
        fs;
      Printf.eprintf "%d of %d inputs failed to load\n" (List.length fs)
        (List.length inputs);
      exit 2
  in
  let inputs_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "Profile CSVs written by $(b,aprof run -o) or $(b,aprof merge \
             -o).  The dumps must share a routine-id universe — i.e. come \
             from runs or shards of the same workload.")
  in
  let output_term =
    let doc =
      "Write the merged profile as CSV to $(docv); without it, render the \
       merged report."
    in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Merge saved profiles (shards of one trace, or runs over several \
          traces) into one")
    Term.(const run $ output_term $ inputs_arg)

(* ----- serve / push / ctl / fleet --------------------------------------- *)

let default_socket = "/tmp/aprof.sock"

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
    | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
    | _ -> failwith ("cannot resolve " ^ host))

(* ADDR is [unix:PATH] or [HOST:PORT]; shared by push and ctl. *)
let parse_addr s =
  if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix.ADDR_UNIX (String.sub s 5 (String.length s - 5)))
  else
    match String.rindex_opt s ':' with
    | None -> Ok (Unix.ADDR_UNIX s)  (* a bare path *)
    | Some i -> (
      let host = String.sub s 0 i in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | None -> Error (Printf.sprintf "bad port in %S" s)
      | Some port -> (
        try Ok (Unix.ADDR_INET (resolve_host host, port))
        with Failure m -> Error m))

let connect_term =
  let doc =
    "Daemon address: $(b,unix:PATH), a bare socket path, or $(b,HOST:PORT)."
  in
  Arg.(
    value
    & opt string ("unix:" ^ default_socket)
    & info [ "c"; "connect" ] ~docv:"ADDR" ~doc)

let connect_to addr_s =
  match parse_addr addr_s with
  | Error m ->
    Printf.eprintf "%s\n" m;
    exit 2
  | Ok addr -> (
    let fd =
      Unix.socket
        (match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET)
        Unix.SOCK_STREAM 0
    in
    try
      Unix.connect fd addr;
      fd
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "cannot connect to %s: %s\n" addr_s
        (Unix.error_message e);
      exit 2)

let serve_cmd =
  let module Server = Aprof_serve.Server in
  let run unix_path tcp profiler shards jobs snapshot_every out fleet_csv
      idle_timeout salvage quiet =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let tcp =
      match tcp with
      | None -> None
      | Some s -> (
        match String.rindex_opt s ':' with
        | Some i -> (
          match
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          with
          | Some port -> Some (String.sub s 0 i, port)
          | None ->
            Printf.eprintf "bad --tcp %S (HOST:PORT)\n" s;
            exit 2)
        | None ->
          Printf.eprintf "bad --tcp %S (HOST:PORT)\n" s;
          exit 2)
    in
    (* Default to the conventional Unix socket when no listener is given. *)
    let unix_path =
      match (unix_path, tcp) with
      | None, None -> Some default_socket
      | u, _ -> u
    in
    let log = if quiet then ignore else fun m -> Printf.eprintf "[serve] %s\n%!" m in
    let cfg =
      {
        Server.default_config with
        unix_path;
        tcp;
        profiler;
        shards;
        jobs =
          (if jobs = 0 then Server.default_config.Server.jobs else jobs);
        snapshot_every;
        snapshot_profile = out;
        fleet_csv;
        idle_timeout;
        salvage;
        log;
      }
    in
    let srv =
      try Server.start cfg
      with Unix.Unix_error (e, fn, arg) ->
        Printf.eprintf "cannot listen: %s(%s): %s\n" fn arg
          (Unix.error_message e);
        exit 2
    in
    let stop _ = Server.request_stop srv in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    (* SIGHUP = "write a snapshot now", the classic daemon convention. *)
    Sys.set_signal Sys.sighup
      (Sys.Signal_handle (fun _ -> Server.request_snapshot srv));
    Server.wait srv;
    let s = Server.stats srv in
    log
      (Printf.sprintf
         "stopped: %d connections, %d traces, %d events, %d drops"
         s.Server.s_conns s.Server.s_traces s.Server.s_events s.Server.s_drops)
  in
  let unix_term =
    let doc = "Listen on a Unix-domain socket at $(docv) (the default \
               listener, at " ^ default_socket ^ ", when no --tcp is given)." in
    Arg.(value & opt (some string) None & info [ "unix" ] ~docv:"PATH" ~doc)
  in
  let tcp_term =
    let doc = "Additionally (or instead) listen on $(docv) (HOST:PORT; \
               port 0 picks one)." in
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)
  in
  let profiler_term =
    let doc = "Profiler run over each stream: $(b,drms), $(b,rms) or $(b,naive)." in
    Arg.(
      value
      & opt (enum [ ("drms", `Drms); ("rms", `Rms); ("naive", `Naive) ]) `Drms
      & info [ "profiler" ] ~docv:"P" ~doc)
  in
  let shards_term =
    let doc = "Profile accumulator shards (more shards, less fold contention)." in
    Arg.(value & opt int 8 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let jobs_term =
    let doc = "Ingest workers (0 = one per available core)." in
    Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let every_term =
    let doc = "Write snapshot artifacts every $(docv) seconds (0 = only on \
               SIGHUP or a SNAPSHOT control command, plus the final one)." in
    Arg.(value & opt float 0. & info [ "snapshot-every" ] ~docv:"SECS" ~doc)
  in
  let out_term =
    let doc = "Write the aggregated profile CSV to $(docv) at each snapshot." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let fleet_term =
    let doc = "Write the per-client/aggregate/top-routine fleet CSV to \
               $(docv) at each snapshot." in
    Arg.(value & opt (some string) None & info [ "fleet-csv" ] ~docv:"FILE" ~doc)
  in
  let idle_term =
    let doc = "Kill a connection silent for $(docv) seconds (0 = never)." in
    Arg.(value & opt float 0. & info [ "idle-timeout" ] ~docv:"SECS" ~doc)
  in
  let salvage_term =
    let doc =
      "Salvage damaged streams: drop corrupt chunks (reported in the log) \
       instead of failing the connection."
    in
    Arg.(value & flag & info [ "k"; "keep-going" ] ~doc)
  in
  let quiet_term =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress the serve log.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the always-on ingest daemon: accept concurrent ATRC streams, \
          aggregate live, snapshot on demand")
    Term.(
      const run $ unix_term $ tcp_term $ profiler_term $ shards_term
      $ jobs_term $ every_term $ out_term $ fleet_term $ idle_term
      $ salvage_term $ quiet_term)

let push_cmd =
  let run connect path repeat flip_byte =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let fd = connect_to connect in
    let chunk = Bytes.create (64 * 1024) in
    let sent = ref 0 in
    let send_once () =
      In_channel.with_open_bin path (fun ic ->
          let rec loop off =
            match In_channel.input ic chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
              (* Deterministic fault injection for the isolation tests:
                 flip one byte at a file offset, every repetition. *)
              (match flip_byte with
              | Some fo when fo >= off && fo < off + n ->
                Bytes.set chunk (fo - off)
                  (Char.chr (Char.code (Bytes.get chunk (fo - off)) lxor 0xff))
              | _ -> ());
              let rec write o =
                if o < n then
                  match Unix.write fd chunk o (n - o) with
                  | 0 -> failwith "socket closed"
                  | k -> write (o + k)
              in
              write 0;
              sent := !sent + n;
              loop (off + n)
          in
          loop 0)
    in
    (try
       for _ = 1 to repeat do
         send_once ()
       done;
       Unix.shutdown fd Unix.SHUTDOWN_SEND
     with
    | Sys_error msg | Failure msg ->
      Printf.eprintf "push failed: %s\n" msg;
      exit 2
    | Unix.Unix_error (e, _, _) ->
      Printf.eprintf "push failed: %s\n" (Unix.error_message e);
      exit 2);
    (* Wait for the server to consume everything and close its end, so
       "push; ctl snapshot" sequences observe their own bytes. *)
    let b = Bytes.create 1 in
    (try while Unix.read fd b 0 1 > 0 do () done with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Printf.eprintf "pushed %d bytes (%s x%d) to %s\n" !sent path repeat connect
  in
  let path_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Binary trace written by $(b,aprof record) to stream.")
  in
  let repeat_term =
    let doc = "Stream the trace $(docv) times back-to-back on one connection." in
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N" ~doc)
  in
  let flip_term =
    let doc =
      "Corrupt the stream by flipping the byte at file offset $(docv) \
       (fault-injection aid for testing isolation and salvage)."
    in
    Arg.(value & opt (some int) None & info [ "flip-byte" ] ~docv:"OFF" ~doc)
  in
  Cmd.v
    (Cmd.info "push"
       ~doc:"Stream a recorded trace file to a running $(b,aprof serve) daemon")
    Term.(const run $ connect_term $ path_arg $ repeat_term $ flip_term)

let ctl_cmd =
  let run connect command =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let fd = connect_to connect in
    let cmd = String.uppercase_ascii command ^ "\n" in
    let b = Bytes.of_string cmd in
    (try ignore (Unix.write fd b 0 (Bytes.length b))
     with Unix.Unix_error (e, _, _) ->
       Printf.eprintf "ctl failed: %s\n" (Unix.error_message e);
       exit 2);
    let buf = Buffer.create 256 in
    let chunk = Bytes.create 1024 in
    (try
       let rec loop () =
         match Unix.read fd chunk 0 (Bytes.length chunk) with
         | 0 -> ()
         | n ->
           Buffer.add_subbytes buf chunk 0 n;
           loop ()
       in
       loop ()
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    let reply = Buffer.contents buf in
    print_string reply;
    if String.length reply >= 3 && String.sub reply 0 3 = "ERR" then exit 1
  in
  let command_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"COMMAND"
          ~doc:
            "Control command: $(b,ping), $(b,stats), $(b,snapshot) (write \
             the configured artifacts now) or $(b,stop).")
  in
  Cmd.v
    (Cmd.info "ctl" ~doc:"Send a control command to a running daemon")
    Term.(const run $ connect_term $ command_arg)

let fleet_cmd =
  (* Offline twin of --fleet-csv: the same document computed from saved
     profile dumps, one client row per file.  Event counts are not
     recorded in profile dumps, so activations stand in for events and
     the throughput column is zero. *)
  let run output top inputs =
    let merged = Aprof_core.Profile.create () in
    let names = Hashtbl.create 64 in
    let failures = ref [] in
    let clients =
      List.map
        (fun path ->
          match In_channel.with_open_text path Aprof_core.Profile_io.load with
          | Ok (p, ns) ->
            Aprof_core.Profile.merge_into ~into:merged p;
            List.iter
              (fun (id, n) ->
                if not (Hashtbl.mem names id) then Hashtbl.add names id n)
              ns;
            {
              Aprof_serve.Fleet.name = path;
              events = Aprof_core.Profile.total_activations p;
              traces = 1;
              drops = 0;
              bytes = 0;
              seconds = 0.;
              error = None;
            }
          | Error e ->
            failures := (path, e) :: !failures;
            {
              Aprof_serve.Fleet.name = path;
              events = 0;
              traces = 0;
              drops = 0;
              bytes = 0;
              seconds = 0.;
              error = Some e;
            }
          | exception Sys_error msg ->
            failures := (path, msg) :: !failures;
            {
              Aprof_serve.Fleet.name = path;
              events = 0;
              traces = 0;
              drops = 0;
              bytes = 0;
              seconds = 0.;
              error = Some msg;
            })
        inputs
    in
    let name_of id =
      match Hashtbl.find_opt names id with
      | Some n -> n
      | None -> Printf.sprintf "routine_%d" id
    in
    let doc =
      Aprof_serve.Fleet.render ~top ~seconds:0. ~name_of ~profile:merged
        clients
    in
    (match output with
    | Some path -> Out_channel.with_open_text path (fun oc -> output_string oc doc)
    | None -> print_string doc);
    match !failures with
    | [] -> ()
    | fs ->
      Printf.eprintf "%d of %d inputs failed to load\n" (List.length fs)
        (List.length inputs);
      exit 2
  in
  let inputs_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"PROFILE"
          ~doc:"Profile CSVs written by $(b,aprof run -o) or a serve snapshot.")
  in
  let output_term =
    let doc = "Write the fleet CSV to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let top_term =
    let doc = "Number of top cost-moving routines to include." in
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"K" ~doc)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Summarize saved profiles as a fleet cost-throughput CSV (offline \
          twin of $(b,aprof serve --fleet-csv))")
    Term.(const run $ output_term $ top_term $ inputs_arg)

(* ----- trace ----------------------------------------------------------- *)

let trace_cmd =
  let run name threads scale seed scheduler limit =
    let result = execute name threads scale seed scheduler in
    let trace = result.Aprof_vm.Interp.trace in
    let n = Aprof_util.Vec.length trace in
    let shown = match limit with Some l -> min l n | None -> n in
    for i = 0 to shown - 1 do
      print_endline (Aprof_trace.Event.to_line (Aprof_util.Vec.get trace i))
    done;
    if shown < n then Printf.eprintf "... (%d more events)\n" (n - shown)
  in
  let limit_term =
    let doc = "Print at most $(docv) events." in
    Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump a workload's event trace (one event per line)")
    Term.(
      const run $ workload_arg $ threads_term $ scale_term $ seed_term
      $ scheduler_term $ limit_term)

(* ----- main ------------------------------------------------------------ *)

let () =
  let doc = "input-sensitive profiling with dynamic workloads (aprof-drms)" in
  let info = Cmd.info "aprof" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; report_cmd; record_cmd; replay_cmd; merge_cmd;
            serve_cmd; push_cmd; ctl_cmd; fleet_cmd;
            plot_cmd; fit_cmd; diff_cmd; tools_cmd; overhead_cmd; comm_cmd;
            contexts_cmd; trace_cmd ]))
