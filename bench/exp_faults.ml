(* Fault-injection sweep over a recorded trace.

   Where test/fault_inject.ml exhaustively mutates a small synthetic
   trace, this experiment throws randomized faults at a real recorded
   blackscholes trace at full chunk size and measures the outcome
   distribution — every fault must land in the trichotomy (identical
   decode / clean decode error / salvage with advertised drops), and a
   wrong decode is a hard failure — plus what integrity costs: v2
   (checksummed) decode throughput against v1, and salvage throughput
   on damaged inputs. *)

module Workload = Aprof_workloads.Workload
module Registry = Aprof_workloads.Registry
module Stream = Aprof_trace.Trace_stream
module Codec = Aprof_trace.Trace_codec
module Crc32c = Aprof_util.Crc32c
module Rng = Aprof_util.Rng
module Vec = Aprof_util.Vec

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (Sys.time () -. t0, r)

(* Events are compared by count plus a running checksum of their text
   rendering — materializing a million event strings per fault would
   dominate the sweep. *)
let stream_digest src =
  let count = ref 0 in
  let crc = ref 0 in
  Stream.iter
    (fun ev ->
      incr count;
      let line = Aprof_trace.Event.to_line ev in
      crc := Crc32c.digest_string ~crc:!crc line ~pos:0 ~len:(String.length line))
    src;
  (!count, !crc)

let record trace routines ~format_version file =
  Out_channel.with_open_bin file (fun oc ->
      let sink =
        Codec.batch_writer ~format_version
          ~routine_name:(Aprof_trace.Routine_table.name routines)
          oc
      in
      let batches = Stream.batches_of_trace trace in
      let rec loop () =
        match batches () with
        | None -> ()
        | Some b ->
          sink.Stream.emit_batch b;
          loop ()
      in
      loop ();
      sink.Stream.close_batch ())

let run ~quick ppf =
  Exp_common.section ppf "faults: injection and salvage on a recorded trace";
  let target = if quick then 100_000 else 600_000 in
  let spec =
    match Registry.find "blackscholes" with
    | Some s -> s
    | None -> failwith "blackscholes workload missing"
  in
  let rec grow scale =
    let result = Workload.run_spec spec ~threads:4 ~scale ~seed:42 in
    if Vec.length result.Aprof_vm.Interp.trace >= target || scale > 8_000_000
    then result
    else grow (scale * 2)
  in
  let result = grow (target / 8) in
  let trace = result.Aprof_vm.Interp.trace in
  let routines = result.Aprof_vm.Interp.routines in
  let v2_file = Filename.temp_file "aprof_faults" ".atrc" in
  let v1_file = Filename.temp_file "aprof_faults_v1" ".atrc" in
  let mutant = Filename.temp_file "aprof_faults_mut" ".atrc" in
  let v3_file = Filename.temp_file "aprof_faults_v3" ".atrc" in
  record trace routines ~format_version:Codec.version v2_file;
  record trace routines ~format_version:1 v1_file;
  record trace routines ~format_version:3 v3_file;
  let pristine = In_channel.with_open_bin v2_file In_channel.input_all in
  let pristine_v3 = In_channel.with_open_bin v3_file In_channel.input_all in
  let total = String.length pristine in
  Format.fprintf ppf "trace: %d events, %d bytes (v2), %d bytes (v3)@."
    (Vec.length trace) total
    (String.length pristine_v3);

  (* --- integrity cost: v1 vs v2 decode throughput -------------------

     Raw batch decode, counting events off the batch lengths: rendering
     each event (as the fault sweep below does) costs an order of
     magnitude more than decoding it and would bury the checksum in
     noise. *)
  let decode_raw file =
    In_channel.with_open_bin file (fun ic ->
        let _, src = Codec.batch_reader ic in
        let count = ref 0 in
        let rec loop () =
          match src () with
          | None -> !count
          | Some b ->
            count := !count + Aprof_trace.Event.Batch.length b;
            loop ()
        in
        loop ())
  in
  let reps = if quick then 5 else 7 in
  (* One decode of the quick-mode trace takes ~2 ms — below the clock
     granularity — so each timing sample amortizes many decodes; the v1
     and v2 samples interleave so machine jitter hits both formats
     alike. *)
  let iters = if quick then 50 else 20 in
  let sample file =
    let dt, n =
      time (fun () ->
          let n = ref 0 in
          for _ = 1 to iters do
            n := decode_raw file
          done;
          !n)
    in
    (dt /. float_of_int iters, n)
  in
  let v1_best = ref infinity and v2_best = ref infinity in
  let v3_best = ref infinity in
  let v1_count = ref 0 and v2_count = ref 0 in
  for _ = 1 to reps do
    let s1, n1 = sample v1_file in
    let s2, n2 = sample v2_file in
    let s3, n3 = sample v3_file in
    if s1 < !v1_best then v1_best := s1;
    if s2 < !v2_best then v2_best := s2;
    if s3 < !v3_best then v3_best := s3;
    v1_count := n1;
    v2_count := n2;
    assert (n3 = n2)
  done;
  let v1_s, v1_count = (!v1_best, !v1_count) in
  let v2_s, v2_count = (!v2_best, !v2_count) in
  let v3_s = !v3_best in
  assert (v1_count = v2_count);
  let ref_count, ref_crc =
    In_channel.with_open_bin v2_file (fun ic ->
        let _, src = Codec.batch_reader ic in
        stream_digest (Stream.events_of_batches src))
  in
  assert (ref_count = v2_count);
  let rate n s = if s > 0. then float_of_int n /. s /. 1e6 else 0. in
  let crc_s, _ =
    time (fun () ->
        let acc = ref 0 in
        for _ = 1 to reps do
          acc := Crc32c.digest_string pristine ~pos:0 ~len:total
        done;
        !acc)
  in
  Format.fprintf ppf "crc32c alone: %.0f MB/s@."
    (float_of_int (total * reps) /. crc_s /. 1e6);
  Format.fprintf ppf
    "v1 decode: %.2fM events/s; v2 decode: %.2fM events/s; v3 decode: %.2fM \
     events/s@."
    (rate ref_count v1_s) (rate ref_count v2_s) (rate ref_count v3_s);
  Format.fprintf ppf "checksum overhead: %+.1f%% decode time@."
    ((v2_s -. v1_s) /. v1_s *. 100.);

  (* --- randomized fault sweep ---------------------------------------

     Run once per container version: v3's transform layer (packed
     chunks, optional entropy coding) sits below the same CRC framing,
     so the trichotomy must hold through it just as it does for plain
     v2 record chunks. *)
  let rng = Rng.create 4242 in
  let n_faults = if quick then 200 else 1000 in
  let sweep ~label pristine =
  let total = String.length pristine in
  let strict_identical = ref 0 in
  let strict_clean = ref 0 in
  let salvage_identical = ref 0 in
  let salvaged = ref 0 in
  let salvage_refused = ref 0 in
  let wrong = ref 0 in
  let events_recovered = ref 0 in
  let events_total = ref 0 in
  let salvage_time = ref 0. in
  for _ = 1 to n_faults do
    (* Flip 1..4 random bytes, or truncate, biased towards flips. *)
    let bytes = Bytes.of_string pristine in
    let m =
      if Rng.int rng 100 < 80 then begin
        for _ = 0 to Rng.int rng 4 do
          let i = Rng.int rng total in
          Bytes.set bytes i
            (Char.chr (Char.code (Bytes.get bytes i) lxor (1 + Rng.int rng 255)))
        done;
        Bytes.unsafe_to_string bytes
      end
      else String.sub pristine 0 (Rng.int rng total)
    in
    Out_channel.with_open_bin mutant (fun oc -> output_string oc m);
    (match
       In_channel.with_open_bin mutant (fun ic ->
           let _, src = Codec.batch_reader ic in
           stream_digest (Stream.events_of_batches src))
     with
    | count, crc ->
      if count = ref_count && crc = ref_crc then incr strict_identical
      else incr wrong
    | exception Stream.Decode_error _ -> incr strict_clean
    | exception e ->
      incr wrong;
      Format.fprintf ppf "FAILURE: strict decode leaked %s@."
        (Printexc.to_string e));
    match
      time (fun () ->
          In_channel.with_open_bin mutant (fun ic ->
              let drops = ref 0 in
              let _, src =
                Codec.read ~path:mutant
                  ~on_corrupt:(`Skip (fun _ -> incr drops))
                  ic
              in
              let count, _ = stream_digest (Stream.events_of_batches src) in
              (count, !drops)))
    with
    | dt, (count, drops) ->
      salvage_time := !salvage_time +. dt;
      events_recovered := !events_recovered + count;
      events_total := !events_total + ref_count;
      if count = ref_count && drops = 0 then incr salvage_identical
      else incr salvaged
    | exception Stream.Decode_error _ -> incr salvage_refused
    | exception e ->
      incr wrong;
      Format.fprintf ppf "FAILURE: salvage leaked %s@." (Printexc.to_string e)
  done;
  Format.fprintf ppf
    "%s: %d faults: strict %d identical / %d clean errors / %d WRONG@." label
    n_faults !strict_identical !strict_clean !wrong;
  Format.fprintf ppf
    "%s salvage: %d intact, %d recovered with drops, %d beyond salvage; \
     %.1f%% of events recovered; %.2fM events/s while salvaging@."
    label !salvage_identical !salvaged !salvage_refused
    (100. *. float_of_int !events_recovered /. float_of_int !events_total)
    (rate !events_recovered !salvage_time);
  if !wrong > 0 then
    Format.fprintf ppf "FAILURE: %d %s faults produced a wrong decode@." !wrong
      label
  else Format.fprintf ppf "%s: trichotomy held on every fault@." label
  in
  sweep ~label:"v2" pristine;
  sweep ~label:"v3" pristine_v3;
  Sys.remove v2_file;
  Sys.remove v1_file;
  Sys.remove v3_file;
  Sys.remove mutant
