(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation.  `dune exec bench/main.exe` runs everything;
   `-e <id>` selects one experiment; `-quick` shrinks workloads;
   `-t <tool>` restricts tool-sweep experiments to one tool. *)

let experiments quick :
    (string * string * (Format.formatter -> unit)) list =
  [
    ("fig1", "drms examples (Figure 1)", Exp_fig1.run);
    ("patterns", "producer-consumer and streaming (Figures 2-3)", Exp_patterns.run);
    ("fig4", "mysql_select cost plots (Figure 4)", Exp_mysql.run);
    ("fig5-6", "vips im_generate and wbuffer (Figures 5-6)", Exp_vips.run);
    ("fig10", "basic blocks vs time (Figure 10)", Exp_sort.run);
    ("fig11", "profile richness (Figure 11)", Exp_richness.run);
    ("fig12", "dynamic input volume (Figure 12)", Exp_volume.run);
    ("fig13", "routine breakdown, MySQL and vips (Figure 13)", Exp_breakdown.run);
    ("fig14", "thread/external input curves (Figure 14)", Exp_sources.run);
    ("fig15", "induced first-read characterization (Figure 15)", Exp_characterize.run);
    ("table1", "tool slowdown and space (Table 1)", Exp_table1.run ~quick);
    ("fig16", "overhead vs thread count (Figure 16)", Exp_scaling.run ~quick);
    ("sched", "scheduler sensitivity", Exp_sched.run);
    ("codec", "binary vs text trace pipeline", Exp_codec.run ~quick);
    ("replay", "batched vs per-event replay hot path", Exp_replay.run ~quick);
    ("parallel", "sharded parallel replay scaling", Exp_parallel.run ~quick);
    ("serve", "concurrent ingest daemon throughput", Exp_serve.run ~quick);
    ("faults", "fault injection and salvage on a recorded trace", Exp_faults.run ~quick);
    ("fit", "penalized cost-model selection battery", Exp_fit.run ~quick);
    ("comm", "communication characterization (future-work direction)", Exp_comm.run);
    ("ablation", "design-choice ablations", Exp_ablation.run);
    ("bechamel", "microbenchmarks", Micro.run);
  ]

let () =
  let quick = Array.exists (( = ) "-quick") Sys.argv in
  let selected = ref None in
  let json_out = ref None in
  Array.iteri
    (fun i arg ->
      if arg = "-e" && i + 1 < Array.length Sys.argv then
        selected := Some Sys.argv.(i + 1);
      if arg = "--json" && i + 1 < Array.length Sys.argv then
        json_out := Some Sys.argv.(i + 1);
      if arg = "-t" && i + 1 < Array.length Sys.argv then
        Exp_common.tool_filter := Some Sys.argv.(i + 1))
    Sys.argv;
  let ppf = Format.std_formatter in
  let exps = experiments quick in
  let to_run =
    match !selected with
    | None -> exps
    | Some id -> (
      match List.filter (fun (eid, _, _) -> eid = id) exps with
      | [] ->
        Format.fprintf ppf "unknown experiment %S; available: %s@." id
          (String.concat ", " (List.map (fun (eid, _, _) -> eid) exps));
        exit 1
      | l -> l)
  in
  Format.fprintf ppf "aprof-drms experiment harness (%d experiments)@."
    (List.length to_run);
  List.iter
    (fun (id, desc, f) ->
      Format.fprintf ppf "@.>>> %s: %s@." id desc;
      let t0 = Sys.time () in
      f ppf;
      Format.fprintf ppf "<<< %s done in %.1fs@." id (Sys.time () -. t0))
    to_run;
  match !json_out with
  | None -> ()
  | Some path ->
    Exp_common.write_json path;
    Format.fprintf ppf "@.experiment rows written to %s@." path
