(* Penalized model selection vs the legacy r^2 ranking, on a synthetic
   battery of known-class noisy curves.

   For every class in the family a batch of curves is planted
   (multiplicative gaussian noise on geometrically spaced input sizes),
   then recovered twice: by AICc-penalized selection ({!Fit_select}) and
   by the raw-r^2 ranking the estimator used to apply.  Under the nested
   designs r^2 is monotone in model size, so the legacy ranking
   gravitates to the top of the ladder — the battery quantifies exactly
   how often — while the penalized pick is gated on ">= 90% true-class
   recovery" in CI.  A fits/s row tracks the cost of a selection (the
   regression watch runs one per routine per run). *)

module Basis = Aprof_analysis.Fit_basis
module Select = Aprof_analysis.Fit_select
module Rng = Aprof_util.Rng

let classes : (Basis.cls * float array) list =
  [
    (Basis.Constant, [| 40. |]);
    (Basis.Plateau, [| 30.; 4.; 900. |]);
    (Basis.Logarithmic, [| 20.; 15. |]);
    (Basis.Linear, [| 40.; 3. |]);
    (Basis.Linearithmic, [| 30.; 2.; 0.7 |]);
    (Basis.Quadratic, [| 50.; 5.; 0.08 |]);
    (Basis.Quadratic_log, [| 40.; 2.; 0.05; 0.02 |]);
    (Basis.Cubic, [| 40.; 1.; 0.01; 0.002 |]);
  ]

(* 16 sizes, geometric from 8 to ~20k: wide enough to tell n^2 log n
   from n^3, dense enough for the small-sample AICc correction to
   matter. *)
let sizes =
  let rec go acc n = if n > 20000. then List.rev acc else go (int_of_float n :: acc) (n *. 1.68) in
  go [] 8.

let plant rng cls coefs ~noise =
  List.map
    (fun n ->
      let y = Basis.eval cls ~coefs (float_of_int n) in
      let factor = Float.max 0.05 (Rng.gaussian rng ~mu:1.0 ~sigma:noise) in
      (n, y *. factor))
    sizes

let noises = [ 0.05; 0.12 ]

let run ~quick ppf =
  let seeds = if quick then 6 else 30 in
  let bootstrap = if quick then 20 else 60 in
  Exp_common.section ppf "penalized fit selection battery";
  let total = ref 0 and correct = ref 0 and r2_correct = ref 0 in
  let r2_overfit = ref 0 in
  let select_time = ref 0. and selections = ref 0 in
  let per_class =
    List.map
      (fun (cls, coefs) ->
        let n = ref 0 and ok = ref 0 and r2_ok = ref 0 and conf_sum = ref 0. in
        List.iter
          (fun noise ->
            for seed = 1 to seeds do
              let rng =
                Rng.create ((seed * 7919) + int_of_float (noise *. 1000.))
              in
              let points = plant rng cls coefs ~noise in
              let t0 = Sys.time () in
              match Select.select ~bootstrap ~seed points with
              | None -> ()
              | Some sel ->
                select_time := !select_time +. (Sys.time () -. t0);
                incr selections;
                incr n;
                incr total;
                conf_sum := !conf_sum +. sel.Select.confidence;
                if sel.Select.best.Aprof_analysis.Fit_solve.cls = cls then begin
                  incr ok;
                  incr correct
                end;
                (match sel.Select.by_r2 with
                | top :: _ ->
                  if top.Aprof_analysis.Fit_solve.cls = cls then begin
                    incr r2_ok;
                    incr r2_correct
                  end
                  else if
                    Basis.order top.Aprof_analysis.Fit_solve.cls
                    > Basis.order cls
                  then incr r2_overfit
                | [] -> ())
            done)
          noises;
        (cls, !n, !ok, !r2_ok, !conf_sum))
      classes
  in
  Format.fprintf ppf "  %-14s %8s %10s %10s %10s@." "class" "curves"
    "penalized" "r2-only" "mean conf";
  List.iter
    (fun (cls, n, ok, r2_ok, conf_sum) ->
      let pct a = 100. *. float_of_int a /. float_of_int (max 1 n) in
      Format.fprintf ppf "  %-14s %8d %9.1f%% %9.1f%% %10.2f@." (Basis.name cls)
        n (pct ok) (pct r2_ok)
        (conf_sum /. float_of_int (max 1 n));
      Exp_common.emit_row ~experiment:"fit"
        [
          ("class", Exp_common.String (Basis.token cls));
          ("curves", Exp_common.Int n);
          ("penalized_accuracy", Exp_common.Float (pct ok /. 100.));
          ("r2_accuracy", Exp_common.Float (pct r2_ok /. 100.));
          ( "mean_confidence",
            Exp_common.Float (conf_sum /. float_of_int (max 1 n)) );
        ])
    per_class;
  let acc = float_of_int !correct /. float_of_int (max 1 !total) in
  let r2_acc = float_of_int !r2_correct /. float_of_int (max 1 !total) in
  let overfit = float_of_int !r2_overfit /. float_of_int (max 1 !total) in
  let fits_per_s =
    if !select_time > 0. then float_of_int !selections /. !select_time else 0.
  in
  Format.fprintf ppf
    "  overall: penalized %.1f%%, r2-only %.1f%% (overfits upward on \
     %.1f%% of curves)@."
    (100. *. acc) (100. *. r2_acc) (100. *. overfit);
  Format.fprintf ppf
    "  %.0f selections/s (bootstrap %d, %d-point curves)@."
    fits_per_s bootstrap (List.length sizes);
  Exp_common.emit_row ~experiment:"fit"
    [
      ("class", Exp_common.String "overall");
      ("curves", Exp_common.Int !total);
      ("penalized_accuracy", Exp_common.Float acc);
      ("r2_accuracy", Exp_common.Float r2_acc);
      ("r2_overfit_rate", Exp_common.Float overfit);
      ("selections_per_s", Exp_common.Float fits_per_s);
      ("bootstrap", Exp_common.Int bootstrap);
      ("points_per_curve", Exp_common.Int (List.length sizes));
    ]
