(* Ingest daemon throughput: aggregate events/second of `aprof serve`
   under many concurrent push clients, against the single-file
   sequential replay rate of the same trace.

   A mysqlslap trace is recorded once (binary v2, probe-pinned scale —
   the daemon's motivating workload: a fleet of database clients each
   streaming its own trace).  The baseline replays it sequentially
   through the drms profiler.  Then an in-process server is started on
   a temp Unix socket and N client threads connect and stream the file
   concurrently; the fleet window is closed when every connection has
   drained and folded, so the rate is end-to-end ingest (decode +
   profile + fold), not just socket drain.

   [ratio_vs_replay] compares aggregate ingest against the sequential
   baseline.  The CI serve gate (4 vCPU) asserts ratio >= 1.0 at >= 8
   clients: concurrent ingest across the worker pool must at least
   match single-file replay.  On a single-core host the ratio mostly
   reflects scheduling overhead — [cores] is recorded on every row so a
   flat number is attributable.  [peak_heap_words] (GC top-of-heap) is
   recorded per row: with bounded inboxes it must not scale with the
   client count. *)

module Registry = Aprof_workloads.Registry
module Workload = Aprof_workloads.Workload
module Stream = Aprof_trace.Trace_stream
module Codec = Aprof_trace.Trace_codec
module Server = Aprof_serve.Server
module Par = Aprof_util.Par
module Vec = Aprof_util.Vec

let now () = Unix.gettimeofday ()

let record_trace ~target path =
  let spec =
    match Registry.find "mysqlslap" with
    | Some s -> s
    | None -> failwith "mysqlslap workload missing"
  in
  (* Probe-pin the scale so the gate measures the regime it names.
     Trace length grows superlinearly in scale for this workload, so a
     single linear probe can overshoot by an order of magnitude; ramp
     the scale geometrically instead, with one power-law refinement if
     the crossing run lands more than 2x past the target. *)
  let run scale = Workload.run_spec spec ~threads:4 ~scale ~seed:42 in
  let events r = Vec.length r.Aprof_vm.Interp.trace in
  let rec ramp prev scale =
    let r = run scale in
    let e = events r in
    if e < target / 2 then ramp (Some (scale, e)) (scale * 2)
    else if e <= target * 2 then r
    else
      match prev with
      | Some (s0, e0) when e > e0 && scale > s0 ->
        let p =
          log (float_of_int e /. float_of_int e0)
          /. log (float_of_int scale /. float_of_int s0)
        in
        let p = Float.max 0.5 (Float.min 3.0 p) in
        let s' =
          int_of_float
            (float_of_int scale
            *. ((float_of_int target /. float_of_int e) ** (1. /. p)))
        in
        run (max 50 s')
      | _ -> r
  in
  let result = ramp None 400 in
  let routines = result.Aprof_vm.Interp.routines in
  Out_channel.with_open_bin path (fun oc ->
      let sink =
        Codec.batch_writer
          ~routine_name:(Aprof_trace.Routine_table.name routines)
          oc
      in
      let batches = Stream.batches_of_trace result.Aprof_vm.Interp.trace in
      let rec loop () =
        match batches () with
        | None -> ()
        | Some b ->
          sink.Stream.emit_batch b;
          loop ()
      in
      loop ();
      sink.Stream.close_batch ());
  Vec.length result.Aprof_vm.Interp.trace

(* One push client: stream the whole file over a fresh connection,
   [repeat] traces back-to-back, then close and wait for the server's
   EOF so the connection is fully drained when this returns. *)
let push_client ~sock ~bytes ~repeat () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let n = Bytes.length bytes in
  for _ = 1 to repeat do
    let rec write o =
      if o < n then
        match Unix.write fd bytes o (n - o) with
        | 0 -> failwith "push: socket closed"
        | k -> write (o + k)
    in
    write 0
  done;
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let b = Bytes.create 1 in
  (try while Unix.read fd b 0 1 > 0 do () done with Unix.Unix_error _ -> ());
  Unix.close fd

let run ~quick ppf =
  Exp_common.section ppf "serve: concurrent ingest daemon throughput";
  let target = if quick then 100_000 else 2_000_000 in
  let cores = Par.available_parallelism () in
  let path = Filename.temp_file "aprof_serve" ".atrc" in
  let trace_events = record_trace ~target path in
  let bytes =
    In_channel.with_open_bin path (fun ic ->
        Bytes.unsafe_of_string (In_channel.input_all ic))
  in
  Format.fprintf ppf "trace: %d events, %d bytes, %d cores available@."
    trace_events (Bytes.length bytes) cores;
  (* Baseline: sequential single-file replay through the same profiler. *)
  let baseline =
    let r =
      Aprof_tools.Replay_driver.replay ~jobs:1 ~profiler:`Drms
        ~with_tools:false ~keep_going:false ~now [ path ]
    in
    if r.Aprof_tools.Replay_driver.failed then failwith "baseline replay failed";
    let events = r.Aprof_tools.Replay_driver.events in
    let seconds = r.Aprof_tools.Replay_driver.seconds in
    let mev = float_of_int events /. seconds /. 1e6 in
    Format.fprintf ppf "  %-18s %9d events  %.3fs  %6.2fM ev/s@." "replay-j1"
      events seconds mev;
    Exp_common.emit_row ~experiment:"serve"
      [
        ("mode", Exp_common.String "replay-j1");
        ("clients", Exp_common.Int 0);
        ("jobs", Exp_common.Int 1);
        ("shards", Exp_common.Int 1);
        ("cores", Exp_common.Int cores);
        ("events", Exp_common.Int events);
        ("seconds", Exp_common.Float seconds);
        ("mev_per_s", Exp_common.Float mev);
        ("ratio_vs_replay", Exp_common.Float 1.);
        ( "peak_heap_words",
          Exp_common.Int (Gc.stat ()).Gc.top_heap_words );
      ];
    mev
  in
  let serve_round ~clients ~repeat =
    let sock = Filename.temp_file "aprof_serve" ".sock" in
    Sys.remove sock;
    let jobs = max 1 (min 8 cores) in
    let shards = 8 in
    let srv =
      Server.start
        {
          Server.default_config with
          unix_path = Some sock;
          jobs;
          shards;
        }
    in
    let t0 = now () in
    let threads =
      List.init clients (fun _ ->
          Thread.create (push_client ~sock ~bytes ~repeat) ())
    in
    List.iter Thread.join threads;
    (* Joined clients saw the server's EOF, so every stream is fully
       folded: the window closes here. *)
    let seconds = now () -. t0 in
    let s = Server.stats srv in
    Server.stop srv;
    let expected = clients * repeat in
    if s.Server.s_traces <> expected then
      failwith
        (Printf.sprintf "serve: folded %d traces, expected %d"
           s.Server.s_traces expected);
    let events = s.Server.s_events in
    let mev = float_of_int events /. seconds /. 1e6 in
    let ratio = mev /. baseline in
    let peak = (Gc.stat ()).Gc.top_heap_words in
    Format.fprintf ppf
      "  %-18s %9d events  %.3fs  %6.2fM ev/s  ratio %.2fx  peak %dw@."
      (Printf.sprintf "serve c=%d j=%d" clients jobs)
      events seconds mev ratio peak;
    Exp_common.emit_row ~experiment:"serve"
      [
        ("mode", Exp_common.String "serve");
        ("clients", Exp_common.Int clients);
        ("jobs", Exp_common.Int jobs);
        ("shards", Exp_common.Int shards);
        ("cores", Exp_common.Int cores);
        ("events", Exp_common.Int events);
        ("seconds", Exp_common.Float seconds);
        ("mev_per_s", Exp_common.Float mev);
        ("ratio_vs_replay", Exp_common.Float ratio);
        ("peak_heap_words", Exp_common.Int peak);
      ]
  in
  (* The fleet sizes: hundreds of concurrent clients in the full run —
     each client is a blocking-IO systhread, which is exactly the
     mysqlslap shape (many mostly-idle connections). *)
  let rounds = if quick then [ (8, 1) ] else [ (8, 2); (128, 1); (512, 1) ] in
  List.iter (fun (clients, repeat) -> serve_round ~clients ~repeat) rounds;
  Sys.remove path
