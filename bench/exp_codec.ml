(* Trace-pipeline benchmark: binary vs text codec throughput, and the
   memory story of streaming decode.

   A large PARSEC miniature is scaled until its trace crosses the target
   event count, then encoded and decoded through both codecs.  The
   figures of merit are events/second for encode and decode, the
   binary/text throughput ratio (the pipeline's raison d'etre), bytes
   per event, and the peak live heap during a streaming decode — which
   must track the I/O chunk size, not the trace length. *)

module Workload = Aprof_workloads.Workload
module Registry = Aprof_workloads.Registry
module Trace = Aprof_trace.Trace
module Stream = Aprof_trace.Trace_stream
module Codec = Aprof_trace.Trace_codec
module Vec = Aprof_util.Vec

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (Sys.time () -. t0, r)

let mib bytes = float_of_int bytes /. (1024. *. 1024.)

let live_words () =
  let st = Gc.stat () in
  st.Gc.live_words

let run ~quick ppf =
  Exp_common.section ppf "codec: binary vs text trace pipeline";
  let target = if quick then 200_000 else 1_200_000 in
  let spec =
    match Registry.find "blackscholes" with
    | Some s -> s
    | None -> failwith "blackscholes workload missing"
  in
  (* Scale the workload until the trace is big enough. *)
  let rec grow scale =
    let result = Workload.run_spec spec ~threads:4 ~scale ~seed:42 in
    let n = Vec.length result.Aprof_vm.Interp.trace in
    if n >= target || scale > 8_000_000 then (result, scale)
    else grow (scale * 2)
  in
  let result, scale = grow (target / 8) in
  let trace = result.Aprof_vm.Interp.trace in
  let routines = result.Aprof_vm.Interp.routines in
  let n_events = Vec.length trace in
  Format.fprintf ppf "workload: %s, scale %d -> %d events@." "blackscholes"
    scale n_events;
  let routine_name = Aprof_trace.Routine_table.name routines in
  let tmp suffix = Filename.temp_file "aprof_codec" suffix in
  let text_file = tmp ".trace" and bin_file = tmp ".atrc" in
  (* --- encode --- *)
  let text_enc_s, () =
    time (fun () ->
        Out_channel.with_open_bin text_file (fun oc -> Trace.save oc trace))
  in
  let bin_enc_s, () =
    time (fun () ->
        Out_channel.with_open_bin bin_file (fun oc ->
            let sink = Codec.writer ~routine_name oc in
            Stream.iter sink.Stream.emit (Trace.to_stream trace);
            sink.Stream.close ()))
  in
  let file_size f =
    Int64.to_int (In_channel.with_open_bin f In_channel.length)
  in
  let text_bytes = file_size text_file in
  let bin_bytes = file_size bin_file in
  (* --- decode --- *)
  let text_dec_s, text_n =
    time (fun () ->
        In_channel.with_open_bin text_file (fun ic ->
            match Trace.load ic with
            | Ok t -> Vec.length t
            | Error e -> failwith e))
  in
  (* Streaming binary decode: count events, sampling live heap words to
     show the decode never holds the trace. *)
  let baseline_live = live_words () in
  let peak_live = ref 0 in
  let sample_every = max 1 (n_events / 8) in
  let bin_dec_s, bin_n =
    time (fun () ->
        In_channel.with_open_bin bin_file (fun ic ->
            let _names, stream = Codec.reader ic in
            let count = ref 0 in
            Stream.iter
              (fun _ ->
                incr count;
                if !count mod sample_every = 0 then
                  peak_live := max !peak_live (live_words ()))
              stream;
            !count))
  in
  if text_n <> n_events || bin_n <> n_events then
    failwith "codec bench: decoded event count mismatch";
  let rate n s = float_of_int n /. Float.max s 1e-9 /. 1e6 in
  Format.fprintf ppf "size: text %.1f MiB (%.1f B/event), binary %.1f MiB (%.1f B/event), ratio %.2fx@."
    (mib text_bytes)
    (float_of_int text_bytes /. float_of_int n_events)
    (mib bin_bytes)
    (float_of_int bin_bytes /. float_of_int n_events)
    (float_of_int text_bytes /. float_of_int bin_bytes);
  Format.fprintf ppf "encode: text %.2fs (%.1f Mev/s), binary %.2fs (%.1f Mev/s), speedup %.2fx@."
    text_enc_s (rate n_events text_enc_s) bin_enc_s (rate n_events bin_enc_s)
    (text_enc_s /. Float.max bin_enc_s 1e-9);
  Format.fprintf ppf "decode: text %.2fs (%.1f Mev/s), binary %.2fs (%.1f Mev/s), speedup %.2fx@."
    text_dec_s (rate n_events text_dec_s) bin_dec_s (rate n_events bin_dec_s)
    (text_dec_s /. Float.max bin_dec_s 1e-9);
  let total_speedup =
    (text_enc_s +. text_dec_s) /. Float.max (bin_enc_s +. bin_dec_s) 1e-9
  in
  Format.fprintf ppf "encode+decode: binary is %.2fx the text codec@."
    total_speedup;
  let extra_live = max 0 (!peak_live - baseline_live) in
  Format.fprintf ppf
    "streaming decode peak extra live: %d words (trace itself: ~%d words)@."
    extra_live (3 * n_events);
  (* --- format versions: v1 / v2 / v3 --------------------------------

     The same trace through every container version.  v1 is the raw
     record stream, v2 adds CRC framing and the shard index, v3 packs
     each chunk (tid runs, address deltas, dictionary-coded patterns,
     repeat suppression) and optionally entropy-codes the payload — the
     "v3-raw" row isolates the packing gain from the Huffman pass.  The
     compression column is v2 bytes over this format's bytes, i.e. how
     many times smaller than the checksummed default the file is. *)
  Format.fprintf ppf "@.format versions (same %d-event trace):@." n_events;
  Format.fprintf ppf "  %-8s %12s %9s %8s %11s %11s@." "format" "bytes"
    "B/event" "vs v2" "enc Mev/s" "dec Mev/s";
  (* Regenerate the trace (deterministic per seed) instead of holding
     the first section's vector live across its sampled decode: the
     live-words samples up there walk the whole heap, and keeping tens
     of megabytes of trace reachable would bill that walk to the binary
     decode being measured. *)
  let result = Workload.run_spec spec ~threads:4 ~scale ~seed:42 in
  let trace = result.Aprof_vm.Interp.trace in
  let routine_name =
    Aprof_trace.Routine_table.name result.Aprof_vm.Interp.routines
  in
  (* The v2 baseline for the ratio column: the binary file from the
     first section is the default (v2) encoding of the same trace. *)
  let v2_bytes = ref bin_bytes in
  List.iter
    (fun (label, format_version, entropy) ->
      let file = tmp ".atrc" in
      let enc_s, () =
        time (fun () ->
            Out_channel.with_open_bin file (fun oc ->
                let n =
                  Stream.connect_batches
                    (Stream.batches_of_trace trace)
                    (Codec.batch_writer ~format_version ~entropy ~routine_name
                       oc)
                in
                if n <> n_events then
                  failwith "codec bench: format encode count mismatch"))
      in
      let bytes = file_size file in
      if label = "v2" then v2_bytes := bytes;
      let dec_s, dec_n =
        time (fun () ->
            In_channel.with_open_bin file (fun ic ->
                let _names, batches = Codec.batch_reader ic in
                let count = ref 0 in
                let rec loop () =
                  match batches () with
                  | None -> !count
                  | Some b ->
                    count := !count + Aprof_trace.Event.Batch.length b;
                    loop ()
                in
                loop ()))
      in
      if dec_n <> n_events then
        failwith "codec bench: format decode count mismatch";
      let bpe = float_of_int bytes /. float_of_int n_events in
      let ratio = float_of_int !v2_bytes /. float_of_int bytes in
      Format.fprintf ppf "  %-8s %12d %9.2f %7.2fx %11.1f %11.1f@." label bytes
        bpe ratio (rate n_events enc_s) (rate n_events dec_s);
      Exp_common.emit_row ~experiment:"codec"
        [
          ("format", Exp_common.String label);
          ("format_version", Exp_common.Int format_version);
          ("entropy", Exp_common.Int (if entropy then 1 else 0));
          ("events", Exp_common.Int n_events);
          ("bytes", Exp_common.Int bytes);
          ("bytes_per_event", Exp_common.Float bpe);
          ("compression_vs_v2", Exp_common.Float ratio);
          ("encode_mev_per_s", Exp_common.Float (rate n_events enc_s));
          ("decode_mev_per_s", Exp_common.Float (rate n_events dec_s));
        ];
      Sys.remove file)
    [
      ("v1", 1, false);
      ("v2", 2, false);
      ("v3", 3, true);
      ("v3-raw", 3, false);
    ];
  Sys.remove text_file;
  Sys.remove bin_file
