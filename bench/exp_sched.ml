(* Scheduler sensitivity (Section 4.2, "Dynamic Workload
   Characterization"): re-run benchmarks under different scheduling
   configurations.  The paper's claim — and the invariant the sched-gate
   CI job enforces — is that external input is a property of the program,
   not of the schedule: per-routine external-op counts must be identical
   under every scheduler, while thread-induced input may fluctuate.

   The fluctuation metrics follow "Multithreaded Input-Sensitive
   Profiling" (arXiv 1304.3804): per-routine coefficient of variation of
   thread-induced input across schedulers, external-input invariance per
   routine, and the whole-benchmark thread-share fluctuation
   100*(max-min)/mean.  A benchmark whose mean thread share is zero has
   no thread-induced signal at all; reporting fluctuation 0% there would
   conflate "perfectly stable" with "nothing to measure", so such rows
   print n/a and omit the JSON field, with [signal] telling the two
   apart. *)

module Scheduler = Aprof_vm.Scheduler
module Metrics = Aprof_core.Metrics
module Profile = Aprof_core.Profile
module Fit = Aprof_core.Fit
module Stats = Aprof_util.Stats

let schedulers =
  [
    ("rr-64", Scheduler.Round_robin { slice = 64 });
    ("rr-16", Scheduler.Round_robin { slice = 16 });
    ("rr-256", Scheduler.Round_robin { slice = 256 });
    ("serialized", Scheduler.Serialized);
    ("random-a", Scheduler.Random_preemptive { min_slice = 8; max_slice = 128 });
    ("random-b", Scheduler.Random_preemptive { min_slice = 32; max_slice = 64 });
    ("ws-2", Scheduler.Work_stealing { workers = 2; slice = 64 });
    ("ws-4", Scheduler.Work_stealing { workers = 4; slice = 64 });
    ("async", Scheduler.Async_io { slice = 64; io_delay = 16 });
  ]

(* mysqlslap is deliberately absent: its clients draw request shapes
   from the shared VM rng at run time, so the *order* of draws — and
   with it the external-op total — depends on the interleaving.  Every
   workload below fixes its external demand at build time. *)
let benchmarks =
  [
    "vips"; "dedup"; "fluidanimate"; "nab"; "smithwa"; "bodytrack";
    "stm"; "server"; "merge_sort";
  ]

let thread_share run =
  match Metrics.suite_characterization run.Exp_common.profile with
  | Some (t, _) -> t
  | None -> 0.

(* Per-routine merged data keyed by routine *name*: intern ids are
   assigned in first-call order, which differs across schedulers, so
   cross-scheduler comparison must go through the name table. *)
let by_name run =
  List.map
    (fun (id, d) ->
      (Aprof_trace.Routine_table.name run.Exp_common.result.Aprof_vm.Interp.routines id, d))
    (Profile.merge_threads run.Exp_common.profile)

let external_ops named =
  List.fold_left (fun acc (_, d) -> acc + d.Profile.induced_external_ops) 0 named

(* Coefficient of variation of [routine]'s thread-induced ops across the
   scheduler runs; a routine a scheduler never profiled contributes 0
   (it really did induce nothing there). *)
let routine_cv named_runs routine =
  let xs =
    List.map
      (fun named ->
        match List.assoc_opt routine named with
        | Some d -> float_of_int d.Profile.induced_thread_ops
        | None -> 0.)
      named_runs
  in
  let m = Stats.mean xs in
  if m <= 0. then None else Some (Stats.stddev xs /. m)

(* Routines whose external-op count differs between any two schedulers.
   The paper (and the CI gate) expect this list to be empty. *)
let external_variant_routines named_runs routines =
  List.filter
    (fun r ->
      let xs =
        List.map
          (fun named ->
            match List.assoc_opt r named with
            | Some d -> d.Profile.induced_external_ops
            | None -> 0)
          named_runs
      in
      List.exists (fun x -> x <> List.hd xs) xs)
    routines

(* Cost-class recovery: fit the *same* routine (by name) in every run
   and check the selected model agrees across schedulers.  Two selection
   rules matter: (a) re-choosing the richest routine per run would
   measure routine-selection churn, not fit stability; (b) the anchor's
   drms *input set* must itself be schedule-invariant — a routine whose
   x-axis is thread-induced (an STM retry loop, a work-queue drain) has
   no cross-scheduler-comparable cost class, only scheduler-specific
   curves.  Among input-stable routines with at least 3 distinct points
   everywhere, take the one richest in its poorest run. *)
let drms_inputs named r =
  match List.assoc_opt r named with
  | Some d -> List.map fst (Fit.points_of_profile ~metric:`Drms ~cost:`Max d)
  | None -> []

let class_routine named_runs routines =
  let min_points r =
    List.fold_left
      (fun acc named ->
        let n =
          match List.assoc_opt r named with
          | Some d -> Metrics.distinct_points ~metric:`Drms d
          | None -> 0
        in
        min acc n)
      max_int named_runs
  in
  let input_stable r =
    match List.map (fun named -> drms_inputs named r) named_runs with
    | [] -> false
    | s0 :: rest -> List.for_all (( = ) s0) rest
  in
  List.fold_left
    (fun best r ->
      let n = min_points r in
      match best with
      | Some (_, bn) when bn >= n -> best
      | _ when n >= 3 && input_stable r -> Some (r, n)
      | _ -> best)
    None routines

let class_of named routine =
  match List.assoc_opt routine named with
  | Some d -> (
    match Fit.best_fit (Fit.points_of_profile ~metric:`Drms ~cost:`Max d) with
    | Some { Fit.model; _ } -> Some (Fit.model_name model)
    | None -> None)
  | None -> None

let run ppf =
  Exp_common.section ppf
    "sched: thread/external input stability across scheduler configurations";
  Format.fprintf ppf "  %d schedulers x %d benchmarks@." (List.length schedulers)
    (List.length benchmarks);
  Format.fprintf ppf "  %-14s %8s %8s %8s %10s %8s %14s %8s@." "benchmark"
    "thread%" "fluct" "cv-mean" "cv-max" "ext-var" "ext ops" "class";
  List.iter
    (fun name ->
      let runs =
        List.map
          (fun (sname, sched) ->
            (sname, Exp_common.run_named ~scale:800 ~scheduler:sched name))
          schedulers
      in
      let named_runs = List.map (fun (_, r) -> by_name r) runs in
      let shares = List.map (fun (_, r) -> thread_share r) runs in
      let ext_counts = List.map external_ops named_runs in
      let ext_min = List.fold_left min max_int ext_counts in
      let ext_max = List.fold_left max 0 ext_counts in
      let mean = Stats.mean shares in
      let fluct =
        if mean <= 0. then None
        else
          Some
            (100.
            *. (List.fold_left Float.max neg_infinity shares
               -. List.fold_left Float.min infinity shares)
            /. mean)
      in
      let routines =
        List.sort_uniq compare (List.concat_map (List.map fst) named_runs)
      in
      let cvs = List.filter_map (routine_cv named_runs) routines in
      let cv_mean = if cvs = [] then 0. else Stats.mean cvs in
      let cv_max = List.fold_left Float.max 0. cvs in
      let ext_variant = external_variant_routines named_runs routines in
      let fit_routine = class_routine named_runs routines in
      let cell_classes =
        match fit_routine with
        | None -> List.map (fun _ -> None) named_runs
        | Some (r, _) -> List.map (fun named -> class_of named r) named_runs
      in
      let class_name, class_stable =
        match List.filter_map Fun.id cell_classes with
        | [] -> ("n/a", true)
        | c0 :: rest -> (c0, List.for_all (( = ) c0) rest)
      in
      Format.fprintf ppf "  %-14s %7.1f%% %8s %8.3f %10.3f %8d %6d/%-6d %8s%s@."
        name mean
        (match fluct with Some f -> Printf.sprintf "%.1f%%" f | None -> "n/a")
        cv_mean cv_max
        (List.length ext_variant)
        ext_min ext_max class_name
        (if class_stable then "" else " (UNSTABLE)");
      (* One row per (benchmark, scheduler) so the gate can count the
         matrix and check invariance without re-deriving aggregates. *)
      List.iteri
        (fun i ((sname, r), named) ->
          Exp_common.emit_row ~experiment:"sched_cell"
            ([
               ("benchmark", Exp_common.String name);
               ("scheduler", Exp_common.String sname);
               ("thread_pct", Exp_common.Float (thread_share r));
               ("external_ops", Exp_common.Int (external_ops named));
             ]
            @
            match (fit_routine, List.nth cell_classes i) with
            | Some (routine, _), Some c ->
              [
                ("fit_routine", Exp_common.String routine);
                ("cost_class", Exp_common.String c);
              ]
            | _ -> []))
        (List.combine runs named_runs);
      Exp_common.emit_row ~experiment:"sched"
        ([
           ("benchmark", Exp_common.String name);
           ("schedulers", Exp_common.Int (List.length runs));
           ("thread_pct_mean", Exp_common.Float mean);
         ]
        @ (match fluct with
          | Some f ->
            [
              ("fluct_pct", Exp_common.Float f);
              ("signal", Exp_common.String "thread");
            ]
          | None -> [ ("signal", Exp_common.String "none") ])
        @ (match fit_routine with
          | Some (r, _) -> [ ("fit_routine", Exp_common.String r) ]
          | None -> [])
        @ [
            ("routine_cv_mean", Exp_common.Float cv_mean);
            ("routine_cv_max", Exp_common.Float cv_max);
            ("external_variant_routines", Exp_common.Int (List.length ext_variant));
            ("external_ops_min", Exp_common.Int ext_min);
            ("external_ops_max", Exp_common.Int ext_max);
            ("cost_class", Exp_common.String class_name);
            ("cost_class_stable", Exp_common.Int (if class_stable then 1 else 0));
          ]))
    benchmarks;
  Format.fprintf ppf
    "  (paper: external input is stable across runs; thread input fluctuates \
     by ~2%% on average with rare large peaks.  fluct = n/a means the \
     benchmark induced no thread input under any scheduler — no signal, \
     not stability.)@."
