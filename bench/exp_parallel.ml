(* Parallel replay scaling: aggregate events/second of the
   work-stealing replay engine at 1..4 workers, per mergeable tool.

   A canneal trace is recorded once (binary, with the shard index) —
   canneal because its event mix exercises what the profilers actually
   do (9% calls, so activations and ancestor searches are real work,
   unlike e.g. blackscholes whose trace has no calls at all and
   degenerates into a pure decode benchmark) — then each shardable
   tool replays it through
   [Tool.replay_parallel] at increasing job counts; shards claim chunks
   from per-worker steal-half deques, each worker reading through its
   own seekable session.  Wall-clock time is the denominator — CPU time
   would erase the parallelism being measured.  [events] counts each
   trace event once (broadcast copies excluded), so the column is
   comparable across tools and job counts.  Every row records the
   host's core count and the number of domains actually backing the
   pool: on a single-core machine, or under the 4.14 sequential
   backend, [domains] exposes why the curve is flat — the speedup
   column is only meaningful when [cores] and [domains] both reach the
   job count (the CI gate checks exactly that). *)

module Workload = Aprof_workloads.Workload
module Registry = Aprof_workloads.Registry
module Stream = Aprof_trace.Trace_stream
module Codec = Aprof_trace.Trace_codec
module Tool = Aprof_tools.Tool
module Harness = Aprof_tools.Harness
module Par = Aprof_util.Par
module Vec = Aprof_util.Vec

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let max_jobs = 4

let run ~quick ppf =
  Exp_common.section ppf "parallel: sharded replay scaling";
  let target = if quick then 150_000 else 3_000_000 in
  let spec =
    match Registry.find "canneal" with
    | Some s -> s
    | None -> failwith "canneal workload missing"
  in
  (* Trace length is near-linear in scale, so one cheap probe run pins
     the scale that lands on [target] — doubling until past it can
     overshoot by 2x, and sharding efficiency is size-sensitive (the
     foreign write-timestamp working set grows with the trace), so the
     gate should measure the regime it names. *)
  let result =
    let probe_scale = 10_000 in
    let probe = Workload.run_spec spec ~threads:4 ~scale:probe_scale ~seed:42 in
    let per_unit =
      float_of_int (Vec.length probe.Aprof_vm.Interp.trace)
      /. float_of_int probe_scale
    in
    let scale =
      max probe_scale (int_of_float (float_of_int target /. per_unit))
    in
    Workload.run_spec spec ~threads:4 ~scale ~seed:42
  in
  let trace = result.Aprof_vm.Interp.trace in
  let routines = result.Aprof_vm.Interp.routines in
  let cores = Par.available_parallelism () in
  Format.fprintf ppf "trace: %d events, %d cores available@." (Vec.length trace)
    cores;
  (* On one core a speedup column would only ever show noise around
     1.0x and invite misreading as "parallelism is broken": warn loudly
     and omit the column entirely (text and JSON) instead of printing a
     number that cannot mean anything here. *)
  let single_core = cores <= 1 in
  if single_core then
    Format.fprintf ppf
      "  *** cores: 1 — single-core host: scaling cannot be measured; \
       speedup_vs_j1 is omitted from all rows (run on a multi-core \
       machine, e.g. the CI parallel gate, for real curves) ***@.";
  let path = Filename.temp_file "aprof_parallel" ".atrc" in
  Out_channel.with_open_bin path (fun oc ->
      let sink =
        Codec.batch_writer
          ~routine_name:(Aprof_trace.Routine_table.name routines)
          oc
      in
      let batches = Stream.batches_of_trace trace in
      let rec loop () =
        match batches () with
        | None -> ()
        | Some b ->
          sink.Stream.emit_batch b;
          loop ()
      in
      loop ();
      sink.Stream.close_batch ());
  (* The v3 copy of the same trace is written here, next to the v2 one,
     so the trace vector is dead before any timed replay below — held
     live it would be marked by every major slice inside a measurement. *)
  let path_v3 = Filename.temp_file "aprof_parallel_v3" ".atrc" in
  Out_channel.with_open_bin path_v3 (fun oc ->
      let sink =
        Codec.batch_writer ~format_version:3
          ~routine_name:(Aprof_trace.Routine_table.name routines)
          oc
      in
      let batches = Stream.batches_of_trace trace in
      let rec loop () =
        match batches () with
        | None -> ()
        | Some b ->
          sink.Stream.emit_batch b;
          loop ()
      in
      loop ();
      sink.Stream.close_batch ());
  let reps = if quick then 1 else 3 in
  let shards =
    match Tool.Shards.of_file path with
    | Some shards -> shards
    | None -> failwith "recorded trace has no chunk index"
  in
  let scaling_rows ~label ~shards (module M : Tool.S) =
    let replay_at jobs =
      let pool = Par.create ~jobs () in
      let one () =
        let seconds, (_, events, _) =
          wall (fun () -> Tool.replay_parallel ~pool ~jobs ~shards (module M))
        in
        (seconds, events)
      in
      (* Best of [reps]: replay times are short enough to jitter. *)
      let best = ref (one ()) in
      for _ = 2 to reps do
        let r = one () in
        if fst r < fst !best then best := r
      done;
      !best
    in
    let base = ref 0. in
    for jobs = 1 to max_jobs do
      let seconds, events = replay_at jobs in
      if jobs = 1 then base := seconds;
      let mev = float_of_int events /. seconds /. 1e6 in
      let speedup = !base /. seconds in
      if single_core then
        Format.fprintf ppf
          "  %-13s jobs=%d  %8d events  %.3fs  %6.2fM ev/s@." label jobs
          events seconds mev
      else
        Format.fprintf ppf
          "  %-13s jobs=%d  %8d events  %.3fs  %6.2fM ev/s  speedup %.2fx@."
          label jobs events seconds mev speedup;
      Exp_common.emit_row ~experiment:"parallel"
        ([
           ("tool", Exp_common.String label);
           ("jobs", Exp_common.Int jobs);
           ("cores", Exp_common.Int cores);
           ( "domains",
             (* Domains the pool actually runs on: the 4.14 backend has
                no Domain module and executes every task on the caller. *)
             Exp_common.Int (if Par.parallel_backend then jobs else 1) );
           ("events", Exp_common.Int events);
           ("seconds", Exp_common.Float seconds);
           ("mev_per_s", Exp_common.Float mev);
         ]
        @
        if single_core then []
        else [ ("speedup_vs_j1", Exp_common.Float speedup) ])
    done
  in
  List.iter
    (fun (Harness.Mergeable (module M)) ->
      scaling_rows ~label:M.name ~shards (module M))
    (Harness.standard_mergeable ());
  (* The same trace as a v3 (packed) file through the drms profiler:
     work-stealing claims whole chunks, and a v3 chunk decodes through
     the transform layer inside each worker's session — the row labels
     carry a "-v3" suffix so per-format curves stay distinguishable. *)
  (match
     List.find_opt
       (fun (Harness.Mergeable (module M)) -> M.name = "aprof-drms")
       (Harness.standard_mergeable ())
   with
  | Some (Harness.Mergeable (module M)) ->
    let shards_v3 =
      match Tool.Shards.of_file path_v3 with
      | Some shards -> shards
      | None -> failwith "v3 trace has no chunk index"
    in
    scaling_rows ~label:(M.name ^ "-v3") ~shards:shards_v3 (module M)
  | None -> failwith "aprof-drms mergeable missing");
  Sys.remove path_v3;
  Sys.remove path
