(* Parallel replay scaling: aggregate events/second of the sharded
   replay engine at 1..4 workers, per mergeable tool.

   A blackscholes trace is recorded once (binary, with the shard
   index), then each thread-shardable tool replays it through
   [Tool.replay_parallel] at increasing job counts; each worker opens
   its own channel and visits only the chunks the index marks as
   relevant to it.  Wall-clock time is the denominator — CPU time would
   erase the parallelism being measured.  The host's core count is
   recorded in every row: on a single-core machine the curve is flat
   (the engine can only interleave), so the speedup column is only
   meaningful when [cores] exceeds the job count. *)

module Workload = Aprof_workloads.Workload
module Registry = Aprof_workloads.Registry
module Stream = Aprof_trace.Trace_stream
module Codec = Aprof_trace.Trace_codec
module Tool = Aprof_tools.Tool
module Harness = Aprof_tools.Harness
module Par = Aprof_util.Par
module Vec = Aprof_util.Vec

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let max_jobs = 4

let run ~quick ppf =
  Exp_common.section ppf "parallel: sharded replay scaling";
  let target = if quick then 150_000 else 3_000_000 in
  let spec =
    match Registry.find "blackscholes" with
    | Some s -> s
    | None -> failwith "blackscholes workload missing"
  in
  let rec grow scale =
    let result = Workload.run_spec spec ~threads:4 ~scale ~seed:42 in
    if Vec.length result.Aprof_vm.Interp.trace >= target || scale > 8_000_000
    then result
    else grow (scale * 2)
  in
  let result = grow (target / 8) in
  let trace = result.Aprof_vm.Interp.trace in
  let routines = result.Aprof_vm.Interp.routines in
  let cores = Par.available_parallelism () in
  Format.fprintf ppf "trace: %d events, %d cores available@." (Vec.length trace)
    cores;
  let path = Filename.temp_file "aprof_parallel" ".atrc" in
  Out_channel.with_open_bin path (fun oc ->
      let sink =
        Codec.batch_writer
          ~routine_name:(Aprof_trace.Routine_table.name routines)
          oc
      in
      let batches = Stream.batches_of_trace trace in
      let rec loop () =
        match batches () with
        | None -> ()
        | Some b ->
          sink.Stream.emit_batch b;
          loop ()
      in
      loop ();
      sink.Stream.close_batch ());
  let reps = if quick then 1 else 3 in
  let replay_at (module M : Tool.S) jobs =
    let pool = Par.create ~jobs () in
    let one () =
      let channels = Array.make jobs None in
      let open_source ~worker =
        let ic = In_channel.open_bin path in
        channels.(worker) <- Some ic;
        match Codec.shards ~path ic with
        | Some shs when jobs > 1 ->
          let select (sh : Codec.shard) =
            sh.Codec.tag_mask land M.broadcast <> 0
            || Array.exists (fun tid -> tid mod jobs = worker) sh.Codec.tids
          in
          snd (Codec.sharded_reader ~path ic shs ~select)
        | _ ->
          In_channel.seek ic 0L;
          snd (Codec.batch_reader ic)
      in
      let seconds, (_, events) =
        wall (fun () -> Tool.replay_parallel ~pool ~jobs ~open_source (module M))
      in
      Array.iter (Option.iter In_channel.close) channels;
      (seconds, events)
    in
    (* Best of [reps]: replay times are short enough to jitter. *)
    let best = ref (one ()) in
    for _ = 2 to reps do
      let r = one () in
      if fst r < fst !best then best := r
    done;
    !best
  in
  List.iter
    (fun (Harness.Mergeable (module M)) ->
      let base = ref 0. in
      for jobs = 1 to max_jobs do
        let seconds, events = replay_at (module M) jobs in
        if jobs = 1 then base := seconds;
        let mev = float_of_int events /. seconds /. 1e6 in
        let speedup = !base /. seconds in
        Format.fprintf ppf
          "  %-10s jobs=%d  %8d events  %.3fs  %6.2fM ev/s  speedup %.2fx@."
          M.name jobs events seconds mev speedup;
        Exp_common.emit_row ~experiment:"parallel"
          [
            ("tool", Exp_common.String M.name);
            ("jobs", Exp_common.Int jobs);
            ("cores", Exp_common.Int cores);
            ("events", Exp_common.Int events);
            ("seconds", Exp_common.Float seconds);
            ("mev_per_s", Exp_common.Float mev);
            ("speedup_vs_j1", Exp_common.Float speedup);
          ]
      done)
    (Harness.standard_mergeable ());
  Sys.remove path
