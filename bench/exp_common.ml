(* Shared machinery for the experiment drivers: run a workload under the
   VM, profile its trace, and extract plot/table data. *)

module Workload = Aprof_workloads.Workload
module Registry = Aprof_workloads.Registry
module Profile = Aprof_core.Profile
module Metrics = Aprof_core.Metrics
module Drms = Aprof_core.Drms_profiler
module Interp = Aprof_vm.Interp
module Plot = Aprof_plot.Ascii_plot

type run = {
  result : Interp.result;
  profile : Profile.t;
  name : string;
}

(* Suite experiments default to the seeded random-preemptive scheduler:
   deterministic per seed, but with realistic interleaving variety (the
   round-robin scheduler repeats the same interleaving every iteration,
   which suppresses the scheduling-dependent drms variability the paper
   observes on real machines). *)
let default_scheduler =
  Aprof_vm.Scheduler.Random_preemptive { min_slice = 8; max_slice = 96 }

let run_spec ?(threads = Registry.default_threads)
    ?(scale = Registry.default_scale) ?(seed = Registry.default_seed)
    ?(scheduler = default_scheduler) (spec : Workload.spec) =
  let result = Workload.run_spec ~scheduler spec ~threads ~scale ~seed in
  let p = Drms.create () in
  Drms.run p result.Interp.trace;
  { result; profile = Drms.finish p; name = spec.Workload.name }

let run_named ?threads ?scale ?seed ?scheduler name =
  match Registry.find name with
  | Some spec -> run_spec ?threads ?scale ?seed ?scheduler spec
  | None -> failwith (Printf.sprintf "unknown workload %s" name)

let routine_id run name =
  match Aprof_trace.Routine_table.find run.result.Interp.routines name with
  | Some id -> id
  | None -> failwith (Printf.sprintf "routine %s missing from %s" name run.name)

let merged run rname =
  match List.assoc_opt (routine_id run rname) (Profile.merge_threads run.profile) with
  | Some d -> d
  | None -> failwith (Printf.sprintf "no profile for %s in %s" rname run.name)

let cost_points ~metric d =
  Aprof_core.Fit.points_of_profile ~metric ~cost:`Max d
  |> List.map (fun (n, c) -> (float_of_int n, c))

let section ppf title =
  Format.fprintf ppf "@.=== %s ===@." title

let fit_note ppf ~label points =
  let int_points = List.map (fun (x, y) -> (int_of_float x, y)) points in
  match Aprof_core.Fit.best_fit int_points with
  | Some { Aprof_core.Fit.model; r_squared; _ } ->
    Format.fprintf ppf "  best fit for %s: %s (R^2 = %.4f)@." label
      (Aprof_core.Fit.model_name model)
      r_squared
  | None -> Format.fprintf ppf "  best fit for %s: (not enough points)@." label

let curve_table ppf ~title curves =
  Format.fprintf ppf "%s@." title;
  Format.fprintf ppf "  %-16s" "benchmark";
  List.iter
    (fun f -> Format.fprintf ppf " %7s" (Printf.sprintf "%g%%" (100. *. f)))
    Metrics.standard_fractions;
  Format.fprintf ppf "@.";
  List.iter
    (fun (name, curve) ->
      Format.fprintf ppf "  %-16s" name;
      List.iter (fun (_, y) -> Format.fprintf ppf " %7.2f" y) curve;
      Format.fprintf ppf "@.")
    curves

(* --- machine-readable experiment rows (--json) ------------------------
   Experiments push flat rows here; the harness dumps them as a JSON
   array when invoked with [--json <file>], so perf numbers can be
   tracked across revisions without scraping the text report. *)

type json_value = Int of int | Float of float | String of string

let json_rows : (string * (string * json_value) list) list ref = ref []

let emit_row ~experiment fields =
  json_rows := (experiment, fields) :: !json_rows

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_value_to_string = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_finite f then Printf.sprintf "%.6g" f else "null"
  | String s -> Printf.sprintf "\"%s\"" (json_escape s)

let write_json path =
  let rows = List.rev !json_rows in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i (experiment, fields) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "  {\"experiment\": \"%s\"" (json_escape experiment));
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf ", \"%s\": %s" (json_escape k)
               (json_value_to_string v)))
        fields;
      Buffer.add_char buf '}')
    rows;
  Buffer.add_string buf "\n]\n";
  Out_channel.with_open_text path (fun oc -> Buffer.output_buffer oc buf)

(* [-t <tool>] on the harness command line: experiments that iterate
   over the standard tool factories (replay, table1) restrict themselves
   to the named tool.  [None] means all tools. *)
let tool_filter : string option ref = ref None

let keep_tool name =
  match !tool_filter with None -> true | Some t -> t = name

(* The benchmark sets used by the paper's figures. *)
let fig11_set_a = [ "fluidanimate"; "mysqlslap"; "smithwa"; "dedup"; "nab" ]
let fig11_set_b = [ "bodytrack"; "swaptions"; "vips"; "x264" ]
let fig14_set = [ "swaptions"; "bodytrack"; "smithwa"; "kdtree"; "dedup"; "x264" ]

let parsec_suite () =
  List.map (fun s -> s.Workload.name) (Registry.by_suite Workload.Parsec)

let omp_suite () =
  List.map (fun s -> s.Workload.name) (Registry.by_suite Workload.Omp)
