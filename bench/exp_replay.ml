(* Replay-path benchmark: the packed batch hot path vs the per-event
   path, per tool.

   A PARSEC miniature is scaled until its trace crosses the target event
   count, recorded to a binary trace file, then replayed into every
   standard tool twice from the same file: once through the per-event
   pipeline (decode -> Event.t -> on_event) and once through the batch
   pipeline (decode -> Event.Batch -> on_batch).  The figures of merit
   are events/second and minor-words/event; the batch path exists to
   push the latter to ~0 for tools that never unpack (nulgrind) and to
   strip the variant+closure tax off the profilers. *)

module Workload = Aprof_workloads.Workload
module Registry = Aprof_workloads.Registry
module Stream = Aprof_trace.Trace_stream
module Codec = Aprof_trace.Trace_codec
module Tool = Aprof_tools.Tool
module Harness = Aprof_tools.Harness
module Vec = Aprof_util.Vec

(* Wall clock, not [Sys.time]: the latter ticks at 10ms on Linux, the
   same order as one replay run, so it quantizes the very ratio this
   experiment exists to measure.  Contention noise is handled by taking
   the best of several interleaved runs instead. *)
let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let run ~quick ppf =
  Exp_common.section ppf "replay: batched vs per-event hot path";
  let target = if quick then 150_000 else 2_400_000 in
  let spec =
    match Registry.find "blackscholes" with
    | Some s -> s
    | None -> failwith "blackscholes workload missing"
  in
  let rec grow scale =
    let result = Workload.run_spec spec ~threads:4 ~scale ~seed:42 in
    let n = Vec.length result.Aprof_vm.Interp.trace in
    if n >= target || scale > 8_000_000 then (result, scale)
    else grow (scale * 2)
  in
  let result, scale = grow (target / 8) in
  let trace = result.Aprof_vm.Interp.trace in
  let routines = result.Aprof_vm.Interp.routines in
  let n_events = Vec.length trace in
  Format.fprintf ppf "workload: %s, scale %d -> %d events@." "blackscholes"
    scale n_events;
  let routine_name = Aprof_trace.Routine_table.name routines in
  let bin_file = Filename.temp_file "aprof_replay" ".atrc" in
  let encoded =
    Out_channel.with_open_bin bin_file (fun oc ->
        Stream.connect_batches
          (Stream.batches_of_trace trace)
          (Codec.batch_writer ~routine_name oc))
  in
  if encoded <> n_events then failwith "replay bench: encode count mismatch";
  (* One throwaway decode so the file is in the page cache before the
     first timed run. *)
  In_channel.with_open_bin bin_file (fun ic ->
      let tool = Aprof_tools.Nulgrind.tool () in
      let _names, batches = Codec.batch_reader ic in
      ignore (Tool.replay_batches tool batches));
  let measure_once factory mode =
    let tool = factory.Tool.create () in
    (* Start every run from the same heap shape, or the garbage of one
       measurement is collected on a later one's clock. *)
    Gc.compact ();
    In_channel.with_open_bin bin_file (fun ic ->
        let m0 = Gc.minor_words () in
        let seconds, n =
          time (fun () ->
              match mode with
              | `Batch ->
                let _names, batches = Codec.batch_reader ic in
                Tool.replay_batches tool batches
              | `Event ->
                let _names, stream = Codec.reader ic in
                Tool.replay_stream tool stream;
                n_events)
        in
        if n <> n_events then failwith "replay bench: replay count mismatch";
        let words = Gc.minor_words () -. m0 in
        (seconds, words /. float_of_int n_events))
  in
  (* Runs are tens of milliseconds, so a stray timer tick or collection
     skews a single sample: keep the fastest of several, and alternate
     the two modes so machine-speed drift cannot land on just one.
     Contention noise does not shrink with run length, so each tool gets
     a fixed time budget of extra interleaved reps — fast tools (where a
     few ms of noise moves the ratio most) collect many samples, slow
     ones stop early. *)
  let budget = 3.0 in
  let max_reps = 8 in
  let measure_pair factory =
    let best_ev = ref (measure_once factory `Event) in
    let best_b = ref (measure_once factory `Batch) in
    let spent = ref (fst !best_ev +. fst !best_b) in
    let reps = ref 0 in
    while (not quick) && !spent < budget && !reps < max_reps do
      incr reps;
      let (s, _) as r = measure_once factory `Event in
      if s < fst !best_ev then best_ev := r;
      let (s', _) as r' = measure_once factory `Batch in
      if s' < fst !best_b then best_b := r';
      spent := !spent +. s +. s'
    done;
    (!best_ev, !best_b)
  in
  let rate s = float_of_int n_events /. Float.max s 1e-9 /. 1e6 in
  Format.fprintf ppf "  %-12s %28s   %28s   %s@." ""
    "per-event (Mev/s, w/ev)" "batch (Mev/s, w/ev)" "speedup";
  List.iter
    (fun factory ->
      let (ev_s, ev_w), (b_s, b_w) = measure_pair factory in
      let speedup = ev_s /. Float.max b_s 1e-9 in
      Format.fprintf ppf "  %-12s %15.1f %12.2f   %15.1f %12.2f   %.2fx@."
        factory.Tool.tool_name (rate ev_s) ev_w (rate b_s) b_w speedup;
      Exp_common.emit_row ~experiment:"replay"
        [
          ("tool", Exp_common.String factory.Tool.tool_name);
          ("events", Exp_common.Int n_events);
          ("per_event_seconds", Exp_common.Float ev_s);
          ("per_event_mev_per_s", Exp_common.Float (rate ev_s));
          ("per_event_minor_words_per_event", Exp_common.Float ev_w);
          ("batch_seconds", Exp_common.Float b_s);
          ("batch_mev_per_s", Exp_common.Float (rate b_s));
          ("batch_minor_words_per_event", Exp_common.Float b_w);
          ("speedup", Exp_common.Float speedup);
        ])
    (List.filter
       (fun f -> Exp_common.keep_tool f.Tool.tool_name)
       (Harness.standard_factories ()));
  (* --- trace-format sweep: batch replay per container version --------

     The same trace replayed off a v2 and a v3 file through the batch
     hot path.  v3 must not lose throughput: its chunks are an order of
     magnitude smaller and the repeat decoder replays memoized template
     rows instead of re-parsing varints, so the bytes saved must show
     up as events per second, not just disk.  The entropy-coded variant
     is included to price the archival option. *)
  Format.fprintf ppf "@.trace formats (batch replay):@.";
  Format.fprintf ppf "  %-12s %-8s %12s %12s@." "tool" "format" "bytes"
    "Mev/s";
  (* Regenerate the trace (deterministic per seed) rather than holding
     the vector live across the per-tool measurements above: a live
     multi-megaword trace would be marked by every major slice landing
     inside a timed replay. *)
  let result = Workload.run_spec spec ~threads:4 ~scale ~seed:42 in
  let trace = result.Aprof_vm.Interp.trace in
  let routine_name =
    Aprof_trace.Routine_table.name result.Aprof_vm.Interp.routines
  in
  let formats = [ ("v2", 2, false); ("v3", 3, false); ("v3+ent", 3, true) ] in
  let files =
    List.map
      (fun (label, format_version, entropy) ->
        let file = Filename.temp_file "aprof_replay_fmt" ".atrc" in
        let encoded =
          Out_channel.with_open_bin file (fun oc ->
              Stream.connect_batches
                (Stream.batches_of_trace trace)
                (Codec.batch_writer ~format_version ~entropy ~routine_name oc))
        in
        if encoded <> n_events then
          failwith "replay bench: format encode count mismatch";
        (label, file))
      formats
  in
  let replay_file factory file =
    let tool = factory.Tool.create () in
    Gc.compact ();
    In_channel.with_open_bin file (fun ic ->
        let seconds, n =
          time (fun () ->
              let _names, batches = Codec.batch_reader ic in
              Tool.replay_batches tool batches)
        in
        if n <> n_events then failwith "replay bench: format replay mismatch";
        seconds)
  in
  List.iter
    (fun tool_name ->
      match
        List.find_opt
          (fun f -> f.Tool.tool_name = tool_name)
          (Harness.standard_factories ())
      with
      | Some factory when Exp_common.keep_tool tool_name ->
        List.iter
          (fun (label, file) ->
            let best = ref (replay_file factory file) in
            let reps = if quick then 1 else 5 in
            for _ = 2 to reps do
              let s = replay_file factory file in
              if s < !best then best := s
            done;
            let bytes =
              Int64.to_int (In_channel.with_open_bin file In_channel.length)
            in
            Format.fprintf ppf "  %-12s %-8s %12d %12.1f@." tool_name label
              bytes (rate !best);
            Exp_common.emit_row ~experiment:"replay"
              [
                ("tool", Exp_common.String tool_name);
                ("format", Exp_common.String label);
                ("events", Exp_common.Int n_events);
                ("bytes", Exp_common.Int bytes);
                ("batch_seconds", Exp_common.Float !best);
                ("batch_mev_per_s", Exp_common.Float (rate !best));
              ])
          files
      | _ -> ())
    [ "nulgrind"; "aprof-drms" ];
  List.iter (fun (_, file) -> Sys.remove file) files;
  Sys.remove bin_file
